//! Job and workflow statistics — the quantities the paper reports.
//!
//! Every figure in the evaluation is ultimately a function of these
//! counters: number of MR cycles, full scans of the input relation, HDFS
//! bytes read and written (× replication), and shuffle (map-output) bytes.

use crate::metrics::MetricsRegistry;
use serde::Serialize;
use std::collections::BTreeMap;

/// Operator-level counters: named `u64` counters recorded by map/reduce
/// operators through [`crate::TaskContext::count`] (Hadoop's user-defined
/// `Counter`s). The engine merges every task's counters into
/// [`JobStats::ops`]; merging is a per-name sum, so totals are independent
/// of task interleaving and worker count.
///
/// Names are `&'static str` by design: operators declare counter-name
/// constants, and recording is a `BTreeMap` bump with no allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct OpCounters {
    counts: BTreeMap<&'static str, u64>,
}

impl OpCounters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (creating it at 0 first).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counts.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (0 if never recorded).
    pub fn get(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// Merge another counter set into this one (per-name sum).
    pub fn merge(&mut self, other: &OpCounters) {
        for (&name, &v) in &other.counts {
            self.add(name, v);
        }
    }

    /// True when no counter was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Render as a JSON object (`{"name":value,...}`), sorted by name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            crate::trace::escape_json_into(name, &mut out);
            out.push_str("\":");
            out.push_str(&v.to_string());
        }
        out.push('}');
        out
    }
}

/// Fault-injection counters for one job: what the failure model did and
/// what it cost. All counts are pure functions of `(seed, job, task)` via
/// [`crate::FaultConfig`], so they are independent of worker count.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultStats {
    /// Map tasks scheduled (chunked work items; the denominator for the
    /// cost model's average-map-task time). Follows the engine's chunking,
    /// like the per-task trace spans.
    pub map_tasks_scheduled: u64,
    /// Wasted map-task attempts (failed, then retried).
    pub map_task_retries: u64,
    /// Wasted reduce-task attempts (failed, then retried).
    pub reduce_task_retries: u64,
    /// Simulated nodes that died during this job's map→reduce handoff.
    pub node_losses: u64,
    /// Completed map tasks re-executed because their node died before
    /// reducers fetched their output.
    pub maps_reexecuted: u64,
    /// Tasks selected as stragglers.
    pub straggler_tasks: u64,
    /// Speculative backup attempts launched for map-phase stragglers.
    pub speculative_map_tasks: u64,
    /// Speculative backup attempts launched for reduce-phase stragglers.
    pub speculative_reduce_tasks: u64,
    /// Speculative backups that finished before the original attempt.
    pub speculative_wins: u64,
    /// Extra map-phase critical-path time from stragglers, in units of
    /// one average map-task time (Σ over stragglers of `effective − 1`).
    pub map_straggler_units: f64,
    /// Extra reduce-phase critical-path time from stragglers, in units of
    /// one average reduce-task time.
    pub reduce_straggler_units: f64,
    /// Checksum mismatches detected by the verified data plane (shuffle
    /// bucket or DFS block), each triggering a recovery refetch.
    pub corruptions_detected: u64,
    /// Map tasks re-executed because a reducer detected a corrupt shuffle
    /// bucket (Hadoop's fetch-failure path) — priced like node-loss
    /// re-executions.
    pub corrupt_refetches: u64,
    /// DFS reads re-fetched from a replica after a block checksum
    /// mismatch.
    pub dfs_refetches: u64,
}

impl FaultStats {
    /// Total speculative backup attempts launched (both phases).
    pub fn speculative_tasks(&self) -> u64 {
        self.speculative_map_tasks + self.speculative_reduce_tasks
    }
}

/// Counters for one MapReduce job.
#[derive(Debug, Clone, Default, Serialize)]
pub struct JobStats {
    /// Job name (for reports).
    pub name: String,
    /// Records read from DFS input files.
    pub input_records: u64,
    /// Text bytes read from DFS input files.
    pub hdfs_read_bytes: u64,
    /// Map output records before any combiner ran.
    pub pre_combine_records: u64,
    /// Map output records (== shuffle records for jobs with a reduce;
    /// after the combiner, if one ran).
    pub map_output_records: u64,
    /// Map output text bytes (== shuffle bytes for jobs with a reduce;
    /// after the combiner, if one ran).
    pub map_output_bytes: u64,
    /// Map output bytes *post-encoding* — the exact size of the encoded
    /// key/value bytes spilled to the shuffle, as opposed to the
    /// text-model `map_output_bytes`. For lexical jobs the two differ
    /// only by framing (length prefixes vs. tab/newline separators); for
    /// ID-encoded jobs the wire bytes are the compact varints actually
    /// shuffled, so this is the number fig tables and `--json` must
    /// report. 0 for map-only jobs (nothing is shuffled).
    pub map_output_encoded_bytes: u64,
    /// Shuffle bytes routed to each reduce partition (indexed by partition
    /// number; empty for map-only jobs). Sums to `map_output_bytes` on
    /// jobs with a reduce phase.
    pub shuffle_partition_bytes: Vec<u64>,
    /// Number of distinct reduce keys (groups).
    pub reduce_groups: u64,
    /// Records delivered to reducers (equals map output records).
    pub reduce_input_records: u64,
    /// Records written to the output file.
    pub output_records: u64,
    /// Text bytes written to the output file (before replication).
    pub output_text_bytes: u64,
    /// Bytes charged to DFS for the output (text bytes × replication).
    pub hdfs_write_bytes: u64,
    /// Number of map tasks.
    pub map_tasks: u64,
    /// Number of reduce tasks (0 for map-only jobs).
    pub reduce_tasks: u64,
    /// Wasted task attempts due to injected failures (each failed attempt
    /// was retried; the successful attempt's output is what shipped).
    /// Equals `faults.map_task_retries + faults.reduce_task_retries`.
    pub task_retries: u64,
    /// Detailed fault-injection counters (node losses, re-executed maps,
    /// stragglers, speculative backups, detected corruptions).
    pub faults: FaultStats,
    /// Undecodable records quarantined to the job's bad-record side file
    /// instead of failing the task (skip-bad-records mode; 0 when the
    /// policy is off or every record decoded).
    pub records_skipped: u64,
    /// Simulated seconds lost to faults: wasted attempts, re-executed
    /// maps, and speculative duplicates, priced by
    /// [`crate::CostModel::retry_seconds`]. Included in `sim_seconds`.
    pub retry_seconds: f64,
    /// True if this job scanned the base input relation in full
    /// (the paper's "FS" column in Figure 3).
    pub full_input_scan: bool,
    /// Shuffle sort strategy tag the engine ran this job with
    /// (`"radix"` or `"comparison"`; see `mrsim::SortStrategy`). Both
    /// strategies produce byte-identical output; the tag records which
    /// pipeline did the ordering.
    pub sort_strategy: &'static str,
    /// Broadcast side files attached to this job (the simulated
    /// distributed cache; 0 for ordinary jobs).
    pub broadcast_files: u64,
    /// Total text bytes of the broadcast side files (one copy).
    pub broadcast_bytes: u64,
    /// Bytes moved to distribute the broadcast payload: one copy per map
    /// task, priced by the cost model at HDFS read bandwidth.
    pub broadcast_ship_bytes: u64,
    /// The planner's estimated output cardinality, when an optimizer
    /// supplied one via [`crate::JobSpec::with_estimated_output`];
    /// compared against `output_records` by [`JobStats::q_error`].
    pub estimated_output_records: Option<f64>,
    /// Simulated wall-clock seconds for this job (from the cost model).
    pub sim_seconds: f64,
    /// Portion of `sim_seconds` that is fixed job-startup overhead.
    pub startup_seconds: f64,
    /// Operator-level counters recorded by this job's map/reduce operators
    /// (see [`OpCounters`]); empty for jobs whose operators record none.
    pub ops: OpCounters,
    /// Distribution metrics (per-task durations, per-partition shuffle
    /// bytes, record wire sizes, reduce group widths) recorded as
    /// deterministic log2 [`crate::Histogram`]s. Only populated when the
    /// engine runs with profiling enabled (see `Engine::with_profiling`);
    /// empty otherwise so the hot path pays nothing.
    pub metrics: MetricsRegistry,
    /// Peak `SpillArena` footprint (payload bytes + index
    /// entries) of any merged reduce partition, in bytes. Arenas only
    /// grow, so the end-of-phase footprint *is* the high-water mark.
    /// Always recorded (the accounting is O(partitions), not O(records)).
    pub peak_arena_bytes: u64,
    /// Peak live bytes held by a single task: the largest map-task
    /// emitter footprint (including the combiner's coexisting output
    /// arena while it runs) or reduce-partition footprint, whichever is
    /// larger. Worker-count-invariant because task chunking is.
    pub peak_task_live_bytes: u64,
    /// High-water mark of any spill index (entry count of the largest
    /// arena index), bounding the sort working set.
    pub peak_spill_entries: u64,
}

impl JobStats {
    /// Shuffle bytes under the text-row cost model (alias for map output
    /// bytes on jobs with a reduce phase; 0 for map-only jobs). Compare
    /// [`shuffle_wire_bytes`](Self::shuffle_wire_bytes), the post-encoding
    /// size of what the shuffle actually moved.
    pub fn shuffle_bytes(&self) -> u64 {
        if self.reduce_tasks > 0 {
            self.map_output_bytes
        } else {
            0
        }
    }

    /// Post-encoding shuffle bytes: the exact wire size of the encoded
    /// key/value records the map phase spilled (0 for map-only jobs).
    /// Diverges from the text-model [`shuffle_bytes`](Self::shuffle_bytes)
    /// on ID-encoded jobs, where compact varints cross the wire.
    pub fn shuffle_wire_bytes(&self) -> u64 {
        if self.reduce_tasks > 0 {
            self.map_output_encoded_bytes
        } else {
            0
        }
    }

    /// Shuffle bytes routed to the most-loaded reduce partition (0 when
    /// the job has no reduce phase).
    pub fn max_partition_shuffle_bytes(&self) -> u64 {
        if self.reduce_tasks == 0 {
            return 0;
        }
        self.shuffle_partition_bytes.iter().copied().max().unwrap_or(0)
    }

    /// The estimate's q-error: `max(est/actual, actual/est)` with both
    /// sides clamped to ≥ 1 so empty outputs and sub-row estimates stay
    /// finite. `1.0` is a perfect estimate; `None` when the job carried no
    /// estimate (no optimizer planned it).
    pub fn q_error(&self) -> Option<f64> {
        let est = self.estimated_output_records?.max(1.0);
        let actual = (self.output_records as f64).max(1.0);
        Some((est / actual).max(actual / est))
    }

    /// Reduce skew: the most-loaded partition's shuffle bytes divided by
    /// the mean per-partition load. `1.0` means perfectly balanced; `r`
    /// (the reduce-task count) means one partition received everything.
    /// Returns `1.0` when there was no shuffle at all.
    pub fn reduce_skew(&self) -> f64 {
        let total: u64 = self.shuffle_partition_bytes.iter().sum();
        if self.reduce_tasks == 0 || total == 0 {
            return 1.0;
        }
        let max = self.max_partition_shuffle_bytes() as f64;
        let mean = total as f64 / self.shuffle_partition_bytes.len() as f64;
        max / mean
    }
}

/// Aggregated counters for a whole workflow (one query execution).
#[derive(Debug, Clone, Default, Serialize)]
pub struct WorkflowStats {
    /// Label for reports (e.g. "Pig/B3").
    pub label: String,
    /// Per-job statistics in execution order.
    pub jobs: Vec<JobStats>,
    /// Number of MR cycles (stages); concurrent jobs in a stage count as
    /// one cycle, matching how the paper counts Pig's concurrent jobs.
    pub mr_cycles: u64,
    /// Number of full scans of the base input relation.
    pub full_scans: u64,
    /// Total simulated seconds (stage makespans summed).
    pub sim_seconds: f64,
    /// True if the workflow completed; false if it aborted (e.g. DiskFull).
    pub succeeded: bool,
    /// Error message when `succeeded` is false.
    pub failure: Option<String>,
    /// Peak DFS usage observed during the workflow.
    pub peak_disk_bytes: u64,
    /// Stage attempts re-run by a [`crate::workflow::RecoveryPolicy`]
    /// after a failure (0 under `FailFast`).
    pub stage_retries: u64,
    /// Simulated seconds charged as recovery backoff between stage
    /// attempts. Included in `sim_seconds`.
    pub backoff_seconds: f64,
    /// True if `DegradeOnDiskFull` dropped a stage's output replication to
    /// 1 to survive a `DiskFull` failure.
    pub degraded_replication: bool,
    /// Stages skipped by [`crate::Workflow::resume`] because all their
    /// outputs were already committed to the DFS (checkpoint hits).
    pub stages_skipped: u64,
}

impl WorkflowStats {
    /// Sum of HDFS read bytes over all jobs.
    pub fn total_read_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.hdfs_read_bytes).sum()
    }

    /// Sum of HDFS write bytes (× replication) over all jobs.
    pub fn total_write_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.hdfs_write_bytes).sum()
    }

    /// Sum of HDFS write bytes for *intermediate* jobs only — what the
    /// paper means by "intermediate HDFS writes". On a successful workflow
    /// that is every job but the last; on a failed workflow no job produced
    /// a final output, so *all* completed jobs' writes were intermediate.
    pub fn intermediate_write_bytes(&self) -> u64 {
        if !self.succeeded {
            return self.total_write_bytes();
        }
        if self.jobs.len() <= 1 {
            return 0;
        }
        self.jobs[..self.jobs.len() - 1].iter().map(|j| j.hdfs_write_bytes).sum()
    }

    /// Operator-level counters merged across every job in the workflow.
    pub fn op_counters(&self) -> OpCounters {
        let mut total = OpCounters::new();
        for job in &self.jobs {
            total.merge(&job.ops);
        }
        total
    }

    /// Sum of text-model shuffle bytes over all jobs.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(JobStats::shuffle_bytes).sum()
    }

    /// Sum of post-encoding shuffle wire bytes over all jobs.
    pub fn total_shuffle_wire_bytes(&self) -> u64 {
        self.jobs.iter().map(JobStats::shuffle_wire_bytes).sum()
    }

    /// Records in the final output (0 if the workflow failed before the
    /// last job).
    pub fn final_output_records(&self) -> u64 {
        self.jobs.last().map_or(0, |j| j.output_records)
    }

    /// Text bytes of the final output (0 if the workflow failed before the
    /// last job).
    pub fn final_output_text_bytes(&self) -> u64 {
        self.jobs.last().map_or(0, |j| j.output_text_bytes)
    }

    /// Wasted task attempts summed over all jobs.
    pub fn total_task_retries(&self) -> u64 {
        self.jobs.iter().map(|j| j.task_retries).sum()
    }

    /// Simulated seconds lost to faults, summed over all jobs (wasted
    /// attempts, re-executed maps, speculative duplicates).
    pub fn total_retry_seconds(&self) -> f64 {
        self.jobs.iter().map(|j| j.retry_seconds).sum()
    }

    /// Simulated node deaths summed over all jobs.
    pub fn total_node_losses(&self) -> u64 {
        self.jobs.iter().map(|j| j.faults.node_losses).sum()
    }

    /// Completed map tasks re-executed after node loss, over all jobs.
    pub fn total_maps_reexecuted(&self) -> u64 {
        self.jobs.iter().map(|j| j.faults.maps_reexecuted).sum()
    }

    /// Speculative backup attempts launched, over all jobs.
    pub fn total_speculative_tasks(&self) -> u64 {
        self.jobs.iter().map(|j| j.faults.speculative_tasks()).sum()
    }

    /// Checksum mismatches detected by the data plane, over all jobs.
    pub fn total_corruptions_detected(&self) -> u64 {
        self.jobs.iter().map(|j| j.faults.corruptions_detected).sum()
    }

    /// Undecodable records quarantined by skip-bad-records, over all jobs.
    pub fn total_records_skipped(&self) -> u64 {
        self.jobs.iter().map(|j| j.records_skipped).sum()
    }

    /// Worst reduce skew over all jobs in the workflow (1.0 when no job
    /// shuffled anything).
    pub fn max_reduce_skew(&self) -> f64 {
        self.jobs.iter().map(JobStats::reduce_skew).fold(1.0, f64::max)
    }

    /// Broadcast ship bytes summed over all jobs (0 when no job used the
    /// distributed cache).
    pub fn total_broadcast_ship_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.broadcast_ship_bytes).sum()
    }

    /// Worst cardinality q-error over all jobs carrying an estimate;
    /// `None` when no job in the workflow was planned with one.
    pub fn max_q_error(&self) -> Option<f64> {
        self.jobs.iter().filter_map(JobStats::q_error).reduce(f64::max)
    }

    /// Distribution metrics merged across every job in the workflow.
    /// Histogram merge is commutative and per-bucket, so the result is
    /// independent of job order and worker count.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut total = MetricsRegistry::new();
        for job in &self.jobs {
            total.merge(&job.metrics);
        }
        total
    }

    /// Largest merged-arena footprint over all jobs (bytes).
    pub fn peak_arena_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.peak_arena_bytes).max().unwrap_or(0)
    }

    /// Largest single-task live-byte high-water mark over all jobs.
    pub fn peak_task_live_bytes(&self) -> u64 {
        self.jobs.iter().map(|j| j.peak_task_live_bytes).max().unwrap_or(0)
    }

    /// Largest spill-index entry count over all jobs.
    pub fn peak_spill_entries(&self) -> u64 {
        self.jobs.iter().map(|j| j.peak_spill_entries).max().unwrap_or(0)
    }

    /// Most-loaded reduce partition's shuffle bytes, over all jobs (0 when
    /// nothing was shuffled). The absolute counterpart of
    /// [`max_reduce_skew`](Self::max_reduce_skew).
    pub fn max_partition_shuffle_bytes(&self) -> u64 {
        self.jobs.iter().map(JobStats::max_partition_shuffle_bytes).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(read: u64, write: u64, shuffle: u64, reduce_tasks: u64) -> JobStats {
        JobStats {
            hdfs_read_bytes: read,
            hdfs_write_bytes: write,
            map_output_bytes: shuffle,
            reduce_tasks,
            ..JobStats::default()
        }
    }

    #[test]
    fn totals() {
        let wf = WorkflowStats {
            jobs: vec![job(100, 50, 80, 2), job(50, 20, 30, 2)],
            succeeded: true,
            ..WorkflowStats::default()
        };
        assert_eq!(wf.total_read_bytes(), 150);
        assert_eq!(wf.total_write_bytes(), 70);
        assert_eq!(wf.intermediate_write_bytes(), 50);
        assert_eq!(wf.total_shuffle_bytes(), 110);
    }

    #[test]
    fn failed_workflow_counts_every_write_as_intermediate() {
        // A failed workflow never produced a final output: the last
        // completed job's writes are intermediate too.
        let mut wf = WorkflowStats {
            jobs: vec![job(100, 50, 80, 2), job(50, 20, 30, 2)],
            succeeded: true,
            ..WorkflowStats::default()
        };
        assert_eq!(wf.intermediate_write_bytes(), 50);
        wf.succeeded = false;
        assert_eq!(wf.intermediate_write_bytes(), 70);
        // Even a single-job failed workflow: its one write was intermediate.
        let single = WorkflowStats { jobs: vec![job(1, 9, 0, 1)], ..WorkflowStats::default() };
        assert_eq!(single.intermediate_write_bytes(), 9);
    }

    #[test]
    fn map_only_jobs_do_not_shuffle() {
        let j = job(10, 10, 999, 0);
        assert_eq!(j.shuffle_bytes(), 0);
    }

    #[test]
    fn skew_is_max_over_mean() {
        let mut j = job(0, 0, 90, 3);
        j.shuffle_partition_bytes = vec![60, 20, 10];
        // mean = 30, max = 60
        assert_eq!(j.max_partition_shuffle_bytes(), 60);
        assert!((j.reduce_skew() - 2.0).abs() < 1e-9);

        let balanced = JobStats {
            reduce_tasks: 2,
            shuffle_partition_bytes: vec![40, 40],
            ..JobStats::default()
        };
        assert!((balanced.reduce_skew() - 1.0).abs() < 1e-9);

        // Map-only and empty-shuffle jobs report neutral skew.
        assert!((job(1, 1, 0, 0).reduce_skew() - 1.0).abs() < 1e-9);
        assert!((job(1, 1, 0, 4).reduce_skew() - 1.0).abs() < 1e-9);
        assert_eq!(job(1, 1, 0, 0).max_partition_shuffle_bytes(), 0);
    }

    #[test]
    fn workflow_max_reduce_skew() {
        let mut skewed = job(0, 0, 100, 2);
        skewed.shuffle_partition_bytes = vec![100, 0];
        let wf = WorkflowStats { jobs: vec![job(1, 1, 0, 0), skewed], ..WorkflowStats::default() };
        assert!((wf.max_reduce_skew() - 2.0).abs() < 1e-9);
        assert!((WorkflowStats::default().max_reduce_skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_job_has_no_intermediate_writes() {
        let wf = WorkflowStats {
            jobs: vec![job(1, 9, 0, 1)],
            succeeded: true,
            ..WorkflowStats::default()
        };
        assert_eq!(wf.intermediate_write_bytes(), 0);
        assert_eq!(wf.total_write_bytes(), 9);
    }

    #[test]
    fn fault_aggregates_sum_over_jobs() {
        let mut j1 = job(0, 0, 0, 1);
        j1.task_retries = 2;
        j1.retry_seconds = 1.5;
        j1.faults.node_losses = 1;
        j1.faults.maps_reexecuted = 3;
        j1.faults.speculative_map_tasks = 1;
        let mut j2 = job(0, 0, 0, 1);
        j2.task_retries = 1;
        j2.retry_seconds = 0.25;
        j2.faults.speculative_reduce_tasks = 2;
        j2.faults.corruptions_detected = 2;
        j2.faults.corrupt_refetches = 1;
        j2.records_skipped = 5;
        j2.output_records = 7;
        j2.output_text_bytes = 70;
        let wf = WorkflowStats { jobs: vec![j1, j2], succeeded: true, ..WorkflowStats::default() };
        assert_eq!(wf.total_task_retries(), 3);
        assert!((wf.total_retry_seconds() - 1.75).abs() < 1e-12);
        assert_eq!(wf.total_node_losses(), 1);
        assert_eq!(wf.total_maps_reexecuted(), 3);
        assert_eq!(wf.total_speculative_tasks(), 3);
        assert_eq!(wf.total_corruptions_detected(), 2);
        assert_eq!(wf.total_records_skipped(), 5);
        assert_eq!(wf.final_output_records(), 7);
        assert_eq!(wf.final_output_text_bytes(), 70);
        assert_eq!(WorkflowStats::default().final_output_text_bytes(), 0);
    }

    #[test]
    fn metrics_and_memory_marks_aggregate() {
        use crate::metrics::name;
        let mut j1 = job(0, 0, 0, 1);
        j1.metrics.record(name::REDUCE_GROUP_WIDTH, 4);
        j1.peak_arena_bytes = 100;
        j1.peak_task_live_bytes = 40;
        j1.peak_spill_entries = 8;
        let mut j2 = job(0, 0, 0, 2);
        j2.metrics.record(name::REDUCE_GROUP_WIDTH, 9);
        j2.shuffle_partition_bytes = vec![70, 30];
        j2.peak_arena_bytes = 60;
        j2.peak_task_live_bytes = 90;
        j2.peak_spill_entries = 3;
        let wf = WorkflowStats { jobs: vec![j1, j2], succeeded: true, ..WorkflowStats::default() };
        let merged = wf.metrics();
        let h = merged.get(name::REDUCE_GROUP_WIDTH).expect("merged histogram");
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 13);
        assert_eq!(h.max(), 9);
        assert_eq!(wf.peak_arena_bytes(), 100);
        assert_eq!(wf.peak_task_live_bytes(), 90);
        assert_eq!(wf.peak_spill_entries(), 8);
        assert_eq!(wf.max_partition_shuffle_bytes(), 70);
        assert_eq!(WorkflowStats::default().peak_arena_bytes(), 0);
        assert_eq!(WorkflowStats::default().max_partition_shuffle_bytes(), 0);
        assert!(WorkflowStats::default().metrics().is_empty());
    }

    #[test]
    fn op_counters_merge_and_aggregate() {
        let mut a = OpCounters::new();
        assert!(a.is_empty());
        assert_eq!(a.get("x"), 0);
        a.add("x", 2);
        a.add("x", 3);
        a.add("y", 1);
        let mut b = OpCounters::new();
        b.add("x", 10);
        b.add("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 15);
        assert_eq!(a.get("y"), 1);
        assert_eq!(a.get("z"), 7);
        // Iteration is name-ordered and JSON matches it.
        let names: Vec<&str> = a.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
        assert_eq!(a.to_json(), r#"{"x":15,"y":1,"z":7}"#);
        assert_eq!(OpCounters::new().to_json(), "{}");

        // Workflow-level aggregation merges per-job counters.
        let mut j1 = job(0, 0, 0, 1);
        j1.ops.add("x", 1);
        let mut j2 = job(0, 0, 0, 1);
        j2.ops.add("x", 2);
        j2.ops.add("y", 4);
        let wf = WorkflowStats { jobs: vec![j1, j2], succeeded: true, ..WorkflowStats::default() };
        let total = wf.op_counters();
        assert_eq!(total.get("x"), 3);
        assert_eq!(total.get("y"), 4);
    }
}
