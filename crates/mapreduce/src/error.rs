//! Engine error types.

use std::fmt;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// The simulated HDFS ran out of space while a job was writing.
    ///
    /// This reproduces the paper's failed executions (bars marked `X` in
    /// Figures 9(a), 12, 13): Pig/Hive runs on BSBM-2M with replication 2
    /// died because redundant intermediate results exceeded the cluster's
    /// 20 GB-per-node disk budget.
    DiskFull {
        /// File being written when space ran out.
        file: String,
        /// Bytes the write would have required (after replication).
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A record could not be decoded (wrong type read from a file, or a
    /// corrupted buffer).
    Codec(String),
    /// An input file does not exist in the simulated DFS.
    NoSuchFile(String),
    /// A job wrote to a file name that already exists (Hadoop refuses to
    /// overwrite job output directories; so do we).
    OutputExists(String),
    /// A task failed every one of its allowed attempts (injected faults;
    /// Hadoop's `mapreduce.map.maxattempts` exceeded), failing the job.
    TaskExhausted {
        /// Job whose task exhausted its attempts.
        job: String,
        /// Phase the task belonged to (`"map"` or `"reduce"`).
        phase: &'static str,
        /// Task index within the phase.
        task: u64,
        /// Attempt budget that was exhausted.
        attempts: u32,
    },
    /// A job's broadcast side files exceed the engine's per-task memory
    /// budget for the simulated distributed cache. A broadcast join whose
    /// build side outgrows task memory must fall back to a reduce-side
    /// join; the optimizer treats this bound as its broadcast threshold.
    BroadcastTooLarge {
        /// Job that declared the broadcast.
        job: String,
        /// Total text bytes of the declared broadcast files.
        needed: u64,
        /// The engine's broadcast memory budget in bytes.
        budget: u64,
    },
    /// A stage was submitted to a workflow that already failed. The
    /// workflow records its first failure and refuses further stages.
    WorkflowDead,
    /// Catch-all for operator-level failures.
    Op(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::DiskFull { file, needed, available } => write!(
                f,
                "simulated HDFS full while writing '{file}': needed {needed} B, available {available} B"
            ),
            MrError::Codec(m) => write!(f, "codec error: {m}"),
            MrError::NoSuchFile(name) => write!(f, "no such DFS file: {name}"),
            MrError::OutputExists(name) => write!(f, "output already exists: {name}"),
            MrError::TaskExhausted { job, phase, task, attempts } => write!(
                f,
                "task {task} ({phase}) of '{job}' failed {attempts} consecutive attempts"
            ),
            MrError::BroadcastTooLarge { job, needed, budget } => write!(
                f,
                "broadcast side files of '{job}' need {needed} B but the task memory budget is {budget} B"
            ),
            MrError::WorkflowDead => write!(f, "workflow already failed; stage refused"),
            MrError::Op(m) => write!(f, "operator error: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl MrError {
    /// True if this error is the disk-capacity failure mode.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, MrError::DiskFull { .. })
    }

    /// True if this error is a task exhausting its fault-injection attempt
    /// budget — the failure mode [`crate::workflow::RecoveryPolicy`]
    /// stage retries can recover from.
    pub fn is_task_exhausted(&self) -> bool {
        matches!(self, MrError::TaskExhausted { .. })
    }

    /// True if this error is a broadcast payload exceeding the engine's
    /// task memory budget.
    pub fn is_broadcast_too_large(&self) -> bool {
        matches!(self, MrError::BroadcastTooLarge { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_disk_full() {
        let e = MrError::DiskFull { file: "out".into(), needed: 10, available: 5 };
        assert!(e.to_string().contains("out"));
        assert!(e.is_disk_full());
    }

    #[test]
    fn display_others() {
        assert!(!MrError::Codec("x".into()).is_disk_full());
        assert!(MrError::NoSuchFile("f".into()).to_string().contains('f'));
    }

    #[test]
    fn task_exhausted_display_and_predicate() {
        let e = MrError::TaskExhausted { job: "j".into(), phase: "map", task: 3, attempts: 4 };
        assert!(e.is_task_exhausted());
        assert!(!e.is_disk_full());
        let msg = e.to_string();
        assert!(msg.contains("consecutive attempts"), "{msg}");
        assert!(msg.contains("task 3 (map) of 'j'"), "{msg}");
        assert!(!MrError::WorkflowDead.is_task_exhausted());
        assert!(MrError::WorkflowDead.to_string().contains("already failed"));
    }
}
