//! Engine error types.

use std::fmt;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// The simulated HDFS ran out of space while a job was writing.
    ///
    /// This reproduces the paper's failed executions (bars marked `X` in
    /// Figures 9(a), 12, 13): Pig/Hive runs on BSBM-2M with replication 2
    /// died because redundant intermediate results exceeded the cluster's
    /// 20 GB-per-node disk budget.
    DiskFull {
        /// File being written when space ran out.
        file: String,
        /// Bytes the write would have required (after replication).
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A record could not be decoded (wrong type read from a file, or a
    /// corrupted buffer).
    Codec(String),
    /// An input file does not exist in the simulated DFS.
    NoSuchFile(String),
    /// A job wrote to a file name that already exists (Hadoop refuses to
    /// overwrite job output directories; so do we).
    OutputExists(String),
    /// Catch-all for operator-level failures.
    Op(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::DiskFull { file, needed, available } => write!(
                f,
                "simulated HDFS full while writing '{file}': needed {needed} B, available {available} B"
            ),
            MrError::Codec(m) => write!(f, "codec error: {m}"),
            MrError::NoSuchFile(name) => write!(f, "no such DFS file: {name}"),
            MrError::OutputExists(name) => write!(f, "output already exists: {name}"),
            MrError::Op(m) => write!(f, "operator error: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl MrError {
    /// True if this error is the disk-capacity failure mode.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, MrError::DiskFull { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_disk_full() {
        let e = MrError::DiskFull { file: "out".into(), needed: 10, available: 5 };
        assert!(e.to_string().contains("out"));
        assert!(e.is_disk_full());
    }

    #[test]
    fn display_others() {
        assert!(!MrError::Codec("x".into()).is_disk_full());
        assert!(MrError::NoSuchFile("f".into()).to_string().contains('f'));
    }
}
