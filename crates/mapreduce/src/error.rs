//! Engine error types.

use std::fmt;

/// Errors surfaced by the MapReduce engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrError {
    /// The simulated HDFS ran out of space while a job was writing.
    ///
    /// This reproduces the paper's failed executions (bars marked `X` in
    /// Figures 9(a), 12, 13): Pig/Hive runs on BSBM-2M with replication 2
    /// died because redundant intermediate results exceeded the cluster's
    /// 20 GB-per-node disk budget.
    DiskFull {
        /// File being written when space ran out.
        file: String,
        /// Bytes the write would have required (after replication).
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A record could not be decoded (wrong type read from a file, or a
    /// corrupted buffer).
    Codec(String),
    /// An input file does not exist in the simulated DFS.
    NoSuchFile(String),
    /// A job wrote to a file name that already exists (Hadoop refuses to
    /// overwrite job output directories; so do we).
    OutputExists(String),
    /// A task failed every one of its allowed attempts (injected faults;
    /// Hadoop's `mapreduce.map.maxattempts` exceeded), failing the job.
    TaskExhausted {
        /// Job whose task exhausted its attempts.
        job: String,
        /// Phase the task belonged to (`"map"` or `"reduce"`).
        phase: &'static str,
        /// Task index within the phase.
        task: u64,
        /// Attempt budget that was exhausted.
        attempts: u32,
    },
    /// A job's broadcast side files exceed the engine's per-task memory
    /// budget for the simulated distributed cache. A broadcast join whose
    /// build side outgrows task memory must fall back to a reduce-side
    /// join; the optimizer treats this bound as its broadcast threshold.
    BroadcastTooLarge {
        /// Job that declared the broadcast.
        job: String,
        /// Total text bytes of the declared broadcast files.
        needed: u64,
        /// The engine's broadcast memory budget in bytes.
        budget: u64,
    },
    /// A checksum mismatch was detected on the data plane: a shuffle
    /// bucket failed verification when a reducer fetched it, or a DFS
    /// file failed verification on read. With verification enabled the
    /// engine recovers (fetch-failure semantics re-execute the producing
    /// map; DFS reads refetch from a replica); this error surfaces only
    /// when corruption is detected somewhere recovery cannot reach.
    Corruption {
        /// Job (or file) whose data failed verification.
        job: String,
        /// Where the mismatch was caught (`"shuffle"` or `"dfs"`).
        site: &'static str,
        /// Checksum recorded when the data was sealed/committed.
        expected: u64,
        /// Checksum recomputed at read time.
        actual: u64,
    },
    /// A task quarantined more undecodable records than its
    /// skip-bad-records budget allows (Hadoop's skip mode gives up once
    /// the bad-record count passes `mapreduce.map.skip.maxrecords`).
    SkipBudgetExhausted {
        /// Job whose task ran out of skip budget.
        job: String,
        /// Per-task skip budget that was exceeded.
        budget: u64,
    },
    /// A stage was submitted to a workflow that already failed. The
    /// workflow records its first failure and refuses further stages.
    WorkflowDead,
    /// Catch-all for operator-level failures.
    Op(String),
}

impl fmt::Display for MrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MrError::DiskFull { file, needed, available } => write!(
                f,
                "simulated HDFS full while writing '{file}': needed {needed} B, available {available} B"
            ),
            MrError::Codec(m) => write!(f, "codec error: {m}"),
            MrError::NoSuchFile(name) => write!(f, "no such DFS file: {name}"),
            MrError::OutputExists(name) => write!(f, "output already exists: {name}"),
            MrError::TaskExhausted { job, phase, task, attempts } => write!(
                f,
                "task {task} ({phase}) of '{job}' failed {attempts} consecutive attempts"
            ),
            MrError::BroadcastTooLarge { job, needed, budget } => write!(
                f,
                "broadcast side files of '{job}' need {needed} B but the task memory budget is {budget} B"
            ),
            MrError::Corruption { job, site, expected, actual } => write!(
                f,
                "checksum mismatch in '{job}' at {site}: expected {expected:#018x}, got {actual:#018x}"
            ),
            MrError::SkipBudgetExhausted { job, budget } => write!(
                f,
                "'{job}' quarantined more than {budget} undecodable records in one task"
            ),
            MrError::WorkflowDead => write!(f, "workflow already failed; stage refused"),
            MrError::Op(m) => write!(f, "operator error: {m}"),
        }
    }
}

impl std::error::Error for MrError {}

impl MrError {
    /// True if this error is the disk-capacity failure mode.
    pub fn is_disk_full(&self) -> bool {
        matches!(self, MrError::DiskFull { .. })
    }

    /// True if this error is a task exhausting its fault-injection attempt
    /// budget — the failure mode [`crate::workflow::RecoveryPolicy`]
    /// stage retries can recover from.
    pub fn is_task_exhausted(&self) -> bool {
        matches!(self, MrError::TaskExhausted { .. })
    }

    /// True if this error is a broadcast payload exceeding the engine's
    /// task memory budget.
    pub fn is_broadcast_too_large(&self) -> bool {
        matches!(self, MrError::BroadcastTooLarge { .. })
    }

    /// True if this error is a detected checksum mismatch.
    pub fn is_corruption(&self) -> bool {
        matches!(self, MrError::Corruption { .. })
    }

    /// True if this error is a task exceeding its skip-bad-records budget.
    pub fn is_skip_budget_exhausted(&self) -> bool {
        matches!(self, MrError::SkipBudgetExhausted { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_disk_full() {
        let e = MrError::DiskFull { file: "out".into(), needed: 10, available: 5 };
        assert!(e.to_string().contains("out"));
        assert!(e.is_disk_full());
    }

    #[test]
    fn display_others() {
        assert!(!MrError::Codec("x".into()).is_disk_full());
        assert!(MrError::NoSuchFile("f".into()).to_string().contains('f'));
    }

    #[test]
    fn task_exhausted_display_and_predicate() {
        let e = MrError::TaskExhausted { job: "j".into(), phase: "map", task: 3, attempts: 4 };
        assert!(e.is_task_exhausted());
        assert!(!e.is_disk_full());
        let msg = e.to_string();
        assert!(msg.contains("consecutive attempts"), "{msg}");
        assert!(msg.contains("task 3 (map) of 'j'"), "{msg}");
        assert!(!MrError::WorkflowDead.is_task_exhausted());
        assert!(MrError::WorkflowDead.to_string().contains("already failed"));
    }

    #[test]
    fn corruption_display_and_predicate() {
        let e = MrError::Corruption {
            job: "j".into(),
            site: "shuffle",
            expected: 0xDEAD,
            actual: 0xBEEF,
        };
        assert!(e.is_corruption());
        assert!(!e.is_task_exhausted());
        let msg = e.to_string();
        assert!(msg.contains("checksum mismatch in 'j' at shuffle"), "{msg}");
        assert!(msg.contains("0x000000000000dead"), "{msg}");
        assert!(!MrError::WorkflowDead.is_corruption());
    }

    #[test]
    fn skip_budget_display_and_predicate() {
        let e = MrError::SkipBudgetExhausted { job: "j".into(), budget: 8 };
        assert!(e.is_skip_budget_exhausted());
        assert!(!e.is_corruption());
        let msg = e.to_string();
        assert!(msg.contains("more than 8 undecodable records"), "{msg}");
        assert!(!MrError::Codec("x".into()).is_skip_budget_exhausted());
    }
}
