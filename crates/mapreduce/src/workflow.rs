//! Workflows: sequences of stages, where a stage is a set of jobs that run
//! concurrently (Pig runs independent MR cycles in parallel; Hive and the
//! NTGA plans run one job per stage).
//!
//! A workflow accumulates [`WorkflowStats`]: per-job counters, the MR-cycle
//! count (a stage of concurrent jobs counts as ONE cycle, matching how the
//! paper counts Pig's concurrent star-join jobs), full-scan count, and
//! simulated makespan. Stage makespan = max over jobs of startup + the sum
//! of all jobs' work time (the jobs share one cluster's aggregate I/O), so
//! concurrency buys overlapping of fixed startup, not free bandwidth.
//!
//! On the first failing job (typically `DiskFull`) the workflow records the
//! failure and refuses to run further stages — exactly the "X" bars of the
//! paper's figures.

use crate::counters::WorkflowStats;
use crate::engine::Engine;
use crate::error::MrError;
use crate::job::JobSpec;
use crate::trace::TraceEvent;

/// A running workflow over an [`Engine`].
pub struct Workflow<'e> {
    engine: &'e Engine,
    stats: WorkflowStats,
    intermediates: Vec<String>,
    failed: bool,
}

impl<'e> Workflow<'e> {
    /// Start a workflow with the given report label.
    pub fn new(engine: &'e Engine, label: impl Into<String>) -> Self {
        let label = label.into();
        engine.emit(|| TraceEvent::WorkflowStart { label: label.clone() });
        Workflow {
            engine,
            stats: WorkflowStats { label, succeeded: true, ..Default::default() },
            intermediates: Vec::new(),
            failed: false,
        }
    }

    /// Run one stage of concurrent jobs. Returns the first error, if any;
    /// the workflow is dead afterwards.
    pub fn run_stage(&mut self, specs: Vec<JobSpec>) -> Result<(), MrError> {
        assert!(!specs.is_empty(), "empty stage");
        if self.failed {
            return Err(MrError::Op("workflow already failed".into()));
        }
        let stage = self.stats.mr_cycles;
        let stage_start = self.stats.sim_seconds;
        self.engine.emit(|| TraceEvent::StageStart { stage, sim_start: stage_start });
        let mut max_startup = 0.0f64;
        let mut sum_work = 0.0f64;
        // (name, startup, work) per completed job, for JobSpan placement.
        let mut spans: Vec<(String, f64, f64)> = Vec::new();
        let outputs: Vec<String> = specs.iter().flat_map(|s| s.outputs.iter().cloned()).collect();
        for spec in &specs {
            match self.engine.run_job(spec) {
                Ok(stats) => {
                    let work = self.engine.cost.work_seconds(&stats);
                    max_startup = max_startup.max(stats.startup_seconds);
                    sum_work += work;
                    spans.push((stats.name.clone(), stats.startup_seconds, work));
                    if stats.full_input_scan {
                        self.stats.full_scans += 1;
                    }
                    self.stats.jobs.push(stats);
                }
                Err(e) => {
                    self.failed = true;
                    self.stats.succeeded = false;
                    self.stats.failure = Some(e.to_string());
                    self.record_peak();
                    return Err(e);
                }
            }
        }
        for (job, startup, work) in spans {
            self.engine.emit(|| TraceEvent::JobSpan {
                job,
                stage,
                sim_start: stage_start,
                sim_end: stage_start + startup + work,
                startup_seconds: startup,
            });
        }
        self.engine
            .emit(|| TraceEvent::StageEnd { stage, sim_end: stage_start + max_startup + sum_work });
        self.stats.mr_cycles += 1;
        self.stats.sim_seconds += max_startup + sum_work;
        self.intermediates.extend(outputs);
        self.record_peak();
        Ok(())
    }

    /// Run a stage of exactly one job.
    pub fn run_job(&mut self, spec: JobSpec) -> Result<(), MrError> {
        self.run_stage(vec![spec])
    }

    fn record_peak(&mut self) {
        self.stats.peak_disk_bytes = self.engine.hdfs().lock().peak_usage();
    }

    /// Finish the workflow: optionally delete every intermediate output
    /// except `keep` (the final result), then return the stats.
    ///
    /// During execution all intermediates stay on the DFS (Hadoop keeps
    /// them for fault tolerance), which is why peak disk usage — and the
    /// DiskFull failures — reflect the whole workflow's footprint.
    pub fn finish(mut self, keep: &[&str]) -> WorkflowStats {
        let mut fs = self.engine.hdfs().lock();
        for name in &self.intermediates {
            if !keep.contains(&name.as_str()) && fs.exists(name) {
                let _ = fs.delete(name);
            }
        }
        drop(fs);
        self.record_peak();
        self.engine.emit(|| TraceEvent::WorkflowEnd {
            label: self.stats.label.clone(),
            sim_seconds: self.stats.sim_seconds,
            succeeded: self.stats.succeeded,
        });
        self.stats
    }

    /// Finish, recording a failure produced outside a stage run.
    pub fn finish_failed(mut self, error: &MrError) -> WorkflowStats {
        self.stats.succeeded = false;
        if self.stats.failure.is_none() {
            self.stats.failure = Some(error.to_string());
        }
        self.finish(&[])
    }

    /// Stats so far (workflow still running).
    pub fn stats(&self) -> &WorkflowStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdfs::SimHdfs;
    use crate::job::{map_fn, reduce_fn, InputBinding, TypedMapEmitter, TypedOutEmitter};

    fn identity_job(input: &str, output: &str, full_scan: bool) -> JobSpec {
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&w, &w);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)
            });
        let spec = JobSpec::map_reduce(
            format!("{input}->{output}"),
            vec![InputBinding { file: input.into(), mapper }],
            reducer,
            2,
            output,
        );
        if full_scan {
            spec.with_full_scan()
        } else {
            spec
        }
    }

    #[test]
    fn two_stage_workflow() {
        let engine = Engine::unbounded();
        engine.put_records("in", ["a".to_string(), "b".to_string()]).unwrap();
        let mut wf = Workflow::new(&engine, "test");
        wf.run_job(identity_job("in", "mid", true)).unwrap();
        wf.run_job(identity_job("mid", "out", false)).unwrap();
        let stats = wf.finish(&["out"]);
        assert!(stats.succeeded);
        assert_eq!(stats.mr_cycles, 2);
        assert_eq!(stats.full_scans, 1);
        assert_eq!(stats.jobs.len(), 2);
        // Intermediate deleted, final kept.
        assert!(!engine.hdfs().lock().exists("mid"));
        assert!(engine.hdfs().lock().exists("out"));
    }

    #[test]
    fn concurrent_stage_counts_one_cycle() {
        let engine = Engine::unbounded();
        engine.put_records("in", ["a".to_string()]).unwrap();
        let mut wf = Workflow::new(&engine, "test");
        wf.run_stage(vec![identity_job("in", "o1", true), identity_job("in", "o2", true)]).unwrap();
        let stats = wf.finish(&[]);
        assert_eq!(stats.mr_cycles, 1);
        assert_eq!(stats.full_scans, 2);
        assert_eq!(stats.jobs.len(), 2);
    }

    #[test]
    fn concurrency_overlaps_startup_only() {
        // Two identical jobs concurrently vs sequentially: concurrent pays
        // startup once, sequential twice; work time identical.
        let engine = Engine::unbounded();
        engine.put_records("in", (0..50).map(|i| format!("w{i}"))).unwrap();

        let mut wf = Workflow::new(&engine, "conc");
        wf.run_stage(vec![identity_job("in", "c1", false), identity_job("in", "c2", false)])
            .unwrap();
        let conc = wf.finish(&[]);

        let mut wf = Workflow::new(&engine, "seq");
        wf.run_job(identity_job("in", "s1", false)).unwrap();
        wf.run_job(identity_job("in", "s2", false)).unwrap();
        let seq = wf.finish(&[]);

        let startup = engine.cost.job_startup_s;
        assert!((seq.sim_seconds - conc.sim_seconds - startup).abs() < 1e-6);
    }

    #[test]
    fn failure_marks_workflow() {
        let engine = Engine::new(SimHdfs::new(10, 1));
        // Input barely fits; job output won't.
        {
            let mut fs = engine.hdfs().lock();
            fs.put(
                "in",
                crate::hdfs::DfsFile {
                    records: vec!["aaaa".to_string().to_bytes()],
                    text_bytes: 5,
                    replication: 1,
                },
            )
            .unwrap();
        }
        use crate::codec::Rec;
        let mut wf = Workflow::new(&engine, "fail");
        // Job emits 3 copies -> won't fit in remaining 5 bytes.
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&w, &w);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)?;
                out.emit(&k)?;
                out.emit(&k)
            });
        let spec = JobSpec::map_reduce(
            "explode",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            1,
            "out",
        );
        let err = wf.run_job(spec).unwrap_err();
        assert!(err.is_disk_full());
        let stats = wf.finish_failed(&err);
        assert!(!stats.succeeded);
        assert!(stats.failure.unwrap().contains("full"));
        // Further stages refused.
    }

    #[test]
    fn dead_workflow_refuses_stages() {
        let engine = Engine::new(SimHdfs::new(1, 1));
        let mut wf = Workflow::new(&engine, "dead");
        assert!(wf.run_job(identity_job("missing", "x", false)).is_err());
        assert!(wf.run_job(identity_job("missing", "y", false)).is_err());
    }
}
