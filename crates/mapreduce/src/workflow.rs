//! Workflows: sequences of stages, where a stage is a set of jobs that run
//! concurrently (Pig runs independent MR cycles in parallel; Hive and the
//! NTGA plans run one job per stage).
//!
//! A workflow accumulates [`WorkflowStats`]: per-job counters, the MR-cycle
//! count (a stage of concurrent jobs counts as ONE cycle, matching how the
//! paper counts Pig's concurrent star-join jobs), full-scan count, and
//! simulated makespan. Stage makespan = max over jobs of startup + the sum
//! of all jobs' charged work time (the jobs share one cluster's aggregate
//! I/O, and injected faults are charged as extra work), so concurrency buys
//! overlapping of fixed startup, not free bandwidth.
//!
//! Failure handling is governed by a [`RecoveryPolicy`]. Under the default
//! [`RecoveryPolicy::FailFast`] the first failing job (typically
//! `DiskFull`) kills the workflow and it refuses further stages — exactly
//! the "X" bars of the paper's figures. The retrying policies re-run a
//! failed stage from the surviving intermediates of earlier stages, the
//! way a Hadoop driver resubmits a failed job without redoing the jobs
//! that already committed their output to the DFS.

use crate::counters::WorkflowStats;
use crate::engine::Engine;
use crate::error::MrError;
use crate::job::JobSpec;
use crate::trace::TraceEvent;

/// What a workflow does when a stage fails.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RecoveryPolicy {
    /// Record the failure and refuse further stages (the paper's behavior:
    /// a Pig/Hive workflow that dies mid-plan reports "X").
    #[default]
    FailFast,
    /// Re-run the failed stage from the surviving intermediates, up to
    /// `max_retries` times, charging `backoff_s × attempt` of driver
    /// backoff to the makespan per retry. Partial outputs of the failed
    /// attempt are deleted first, and each re-run bumps the specs'
    /// `fault_epoch` so injected faults are re-drawn deterministically.
    RetryStage {
        /// Maximum stage re-runs before giving up.
        max_retries: u32,
        /// Linear backoff unit charged per retry (seconds).
        backoff_s: f64,
    },
    /// On a `DiskFull` failure only: drop the failed stage's output
    /// replication to 1 and retry the stage once, recording the
    /// degradation in [`WorkflowStats::degraded_replication`]. Trades
    /// fault tolerance of intermediates for completing the workflow —
    /// the classic operator move on a nearly-full cluster. If the stage
    /// is *already* writing at replication 1 there is nothing left to
    /// degrade, and the stage fails fast with the original `DiskFull`.
    DegradeOnDiskFull,
    /// Fail the current driver like [`FailFast`](Self::FailFast), but
    /// rely on completed stage outputs on the DFS as checkpoints: a new
    /// driver built with [`Workflow::resume`] resubmits the same stages
    /// and skips every stage whose outputs are all committed, re-running
    /// only from the first incomplete stage (partial outputs of which
    /// are deleted first). This is the restart story of a long NTGA
    /// workflow after a driver crash.
    CheckpointRestart,
}

/// A running workflow over an [`Engine`].
pub struct Workflow<'e> {
    engine: &'e Engine,
    policy: RecoveryPolicy,
    stats: WorkflowStats,
    intermediates: Vec<String>,
    failed: bool,
    /// Per-attempt trace stage index. Equals `stats.mr_cycles` until a
    /// stage retry: every attempt (failed or not) consumes an index so
    /// trace timelines stay unambiguous.
    next_stage: u64,
    /// True while a [`resume`](Self::resume)d workflow is still replaying
    /// the checkpointed prefix: stages whose outputs all exist are
    /// skipped. Cleared at the first incomplete stage.
    resuming: bool,
}

impl<'e> Workflow<'e> {
    /// Start a workflow with the given report label. The recovery policy
    /// is inherited from the engine (see [`Engine::with_recovery`]).
    pub fn new(engine: &'e Engine, label: impl Into<String>) -> Self {
        let label = label.into();
        engine.emit(|| TraceEvent::WorkflowStart { label: label.clone() });
        Workflow {
            engine,
            policy: engine.recovery,
            stats: WorkflowStats { label, succeeded: true, ..Default::default() },
            intermediates: Vec::new(),
            failed: false,
            next_stage: 0,
            resuming: false,
        }
    }

    /// Restart a workflow after a driver crash (or a
    /// [`RecoveryPolicy::CheckpointRestart`] failure), treating completed
    /// stage outputs already on the DFS as checkpoints. The caller
    /// resubmits the *same* stage sequence; every stage whose outputs all
    /// exist is skipped (recorded in [`WorkflowStats::stages_skipped`]
    /// and a `checkpoint_resume` trace event), and execution restarts at
    /// the first incomplete stage after deleting its partial outputs.
    pub fn resume(engine: &'e Engine, label: impl Into<String>) -> Self {
        let mut wf = Workflow::new(engine, label);
        wf.resuming = true;
        wf
    }

    /// Override the recovery policy for this workflow only.
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Run one stage of concurrent jobs, applying the recovery policy on
    /// failure. Returns the error that killed the workflow, if any; the
    /// workflow is dead afterwards and refuses further stages with
    /// [`MrError::WorkflowDead`].
    pub fn run_stage(&mut self, mut specs: Vec<JobSpec>) -> Result<(), MrError> {
        assert!(!specs.is_empty(), "empty stage");
        if self.failed {
            return Err(MrError::WorkflowDead);
        }
        // Register outputs BEFORE running: a stage that fails midway may
        // have committed some jobs' outputs to the DFS, and those must be
        // cleaned up by `finish`/`finish_failed` like any intermediate.
        let outputs: Vec<String> = specs.iter().flat_map(|s| s.outputs.iter().cloned()).collect();
        self.intermediates.extend(outputs.iter().cloned());
        if self.resuming {
            let all_committed = {
                let fs = self.engine.hdfs().lock();
                outputs.iter().all(|o| fs.exists(o))
            };
            if all_committed {
                // Checkpoint hit: every output of this stage survived the
                // crash. Consume a stage index (trace timelines stay
                // aligned with the original submission order) and move on
                // without running or charging anything.
                let stage = self.next_stage;
                self.next_stage += 1;
                self.stats.stages_skipped += 1;
                self.engine
                    .emit(|| TraceEvent::CheckpointResume { stage, jobs: specs.len() as u64 });
                return Ok(());
            }
            // First incomplete stage: delete any partial outputs the
            // crashed driver left behind, then run normally from here on.
            self.resuming = false;
            self.delete_existing(&outputs);
        }
        let mut attempt: u32 = 0;
        let mut degraded = false;
        loop {
            match self.try_stage(&specs) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let backoff = match self.policy {
                        RecoveryPolicy::FailFast => None,
                        RecoveryPolicy::RetryStage { max_retries, backoff_s } => {
                            (attempt < max_retries).then(|| backoff_s * f64::from(attempt + 1))
                        }
                        RecoveryPolicy::DegradeOnDiskFull => {
                            // Nothing to degrade if every job already
                            // writes at replication 1 — retrying would
                            // just hit the same wall, so fail fast with
                            // the original DiskFull.
                            let default_repl = self.engine.hdfs().lock().default_replication();
                            let degradable =
                                specs.iter().any(|s| s.replication.unwrap_or(default_repl) > 1);
                            (e.is_disk_full() && !degraded && degradable).then_some(0.0)
                        }
                        RecoveryPolicy::CheckpointRestart => None,
                    };
                    let Some(backoff) = backoff else {
                        self.failed = true;
                        self.stats.succeeded = false;
                        self.stats.failure = Some(e.to_string());
                        return Err(e);
                    };
                    attempt += 1;
                    self.delete_existing(&outputs);
                    self.stats.stage_retries += 1;
                    self.stats.backoff_seconds += backoff;
                    self.stats.sim_seconds += backoff;
                    let failed_stage = self.next_stage - 1;
                    self.engine.emit(|| TraceEvent::StageRetry {
                        stage: failed_stage,
                        attempt,
                        backoff_seconds: backoff,
                        error: e.to_string(),
                    });
                    if matches!(self.policy, RecoveryPolicy::DegradeOnDiskFull) {
                        degraded = true;
                        self.stats.degraded_replication = true;
                        for spec in &mut specs {
                            spec.replication = Some(1);
                        }
                    } else {
                        // Fresh deterministic fault draws for the re-run.
                        for spec in &mut specs {
                            spec.fault_epoch = u64::from(attempt);
                        }
                    }
                }
            }
        }
    }

    /// One attempt at a stage. On success, charges the stage makespan and
    /// emits `JobSpan`/`StageEnd`; on failure, charges nothing (the retry
    /// path charges backoff, and a dead workflow's partial stage never
    /// contributes to the makespan — matching the pre-recovery behavior).
    fn try_stage(&mut self, specs: &[JobSpec]) -> Result<(), MrError> {
        let stage = self.next_stage;
        self.next_stage += 1;
        let stage_start = self.stats.sim_seconds;
        self.engine.emit(|| TraceEvent::StageStart { stage, sim_start: stage_start });
        let mut max_startup = 0.0f64;
        let mut sum_work = 0.0f64;
        // (name, startup, work) per completed job, for JobSpan placement.
        let mut spans: Vec<(String, f64, f64)> = Vec::new();
        for spec in specs {
            match self.engine.run_job(spec) {
                Ok(stats) => {
                    let work = self.engine.cost.charged_work_seconds(&stats);
                    max_startup = max_startup.max(stats.startup_seconds);
                    sum_work += work;
                    spans.push((stats.name.clone(), stats.startup_seconds, work));
                    if stats.full_input_scan {
                        self.stats.full_scans += 1;
                    }
                    self.stats.jobs.push(stats);
                }
                Err(e) => {
                    self.record_peak();
                    return Err(e);
                }
            }
        }
        for (job, startup, work) in spans {
            self.engine.emit(|| TraceEvent::JobSpan {
                job,
                stage,
                sim_start: stage_start,
                sim_end: stage_start + startup + work,
                startup_seconds: startup,
            });
        }
        self.engine
            .emit(|| TraceEvent::StageEnd { stage, sim_end: stage_start + max_startup + sum_work });
        self.stats.mr_cycles += 1;
        self.stats.sim_seconds += max_startup + sum_work;
        self.record_peak();
        Ok(())
    }

    /// Run a stage of exactly one job.
    pub fn run_job(&mut self, spec: JobSpec) -> Result<(), MrError> {
        self.run_stage(vec![spec])
    }

    /// Delete the given outputs from the DFS if present (partial results
    /// of a failed stage attempt, about to be re-run).
    fn delete_existing(&self, outputs: &[String]) {
        let mut fs = self.engine.hdfs().lock();
        for name in outputs {
            if fs.exists(name) {
                let _ = fs.delete(name);
            }
        }
    }

    fn record_peak(&mut self) {
        self.stats.peak_disk_bytes = self.engine.hdfs().lock().peak_usage();
    }

    /// Finish the workflow: optionally delete every intermediate output
    /// except `keep` (the final result), then return the stats.
    ///
    /// During execution all intermediates stay on the DFS (Hadoop keeps
    /// them for fault tolerance), which is why peak disk usage — and the
    /// DiskFull failures — reflect the whole workflow's footprint.
    pub fn finish(mut self, keep: &[&str]) -> WorkflowStats {
        let mut fs = self.engine.hdfs().lock();
        for name in &self.intermediates {
            if !keep.contains(&name.as_str()) && fs.exists(name) {
                let _ = fs.delete(name);
            }
        }
        drop(fs);
        self.record_peak();
        self.engine.emit(|| TraceEvent::WorkflowEnd {
            label: self.stats.label.clone(),
            sim_seconds: self.stats.sim_seconds,
            succeeded: self.stats.succeeded,
        });
        self.stats
    }

    /// Finish, recording a failure produced outside a stage run.
    pub fn finish_failed(mut self, error: &MrError) -> WorkflowStats {
        self.stats.succeeded = false;
        if self.stats.failure.is_none() {
            self.stats.failure = Some(error.to_string());
        }
        self.finish(&[])
    }

    /// Stats so far (workflow still running).
    pub fn stats(&self) -> &WorkflowStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::hdfs::SimHdfs;
    use crate::job::{map_fn, reduce_fn, InputBinding, TypedMapEmitter, TypedOutEmitter};

    fn identity_job(input: &str, output: &str, full_scan: bool) -> JobSpec {
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&w, &w);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)
            });
        let spec = JobSpec::map_reduce(
            format!("{input}->{output}"),
            vec![InputBinding { file: input.into(), mapper }],
            reducer,
            2,
            output,
        );
        if full_scan {
            spec.with_full_scan()
        } else {
            spec
        }
    }

    #[test]
    fn two_stage_workflow() {
        let engine = Engine::unbounded();
        engine.put_records("in", ["a".to_string(), "b".to_string()]).unwrap();
        let mut wf = Workflow::new(&engine, "test");
        wf.run_job(identity_job("in", "mid", true)).unwrap();
        wf.run_job(identity_job("mid", "out", false)).unwrap();
        let stats = wf.finish(&["out"]);
        assert!(stats.succeeded);
        assert_eq!(stats.mr_cycles, 2);
        assert_eq!(stats.full_scans, 1);
        assert_eq!(stats.jobs.len(), 2);
        // Intermediate deleted, final kept.
        assert!(!engine.hdfs().lock().exists("mid"));
        assert!(engine.hdfs().lock().exists("out"));
    }

    #[test]
    fn concurrent_stage_counts_one_cycle() {
        let engine = Engine::unbounded();
        engine.put_records("in", ["a".to_string()]).unwrap();
        let mut wf = Workflow::new(&engine, "test");
        wf.run_stage(vec![identity_job("in", "o1", true), identity_job("in", "o2", true)]).unwrap();
        let stats = wf.finish(&[]);
        assert_eq!(stats.mr_cycles, 1);
        assert_eq!(stats.full_scans, 2);
        assert_eq!(stats.jobs.len(), 2);
    }

    #[test]
    fn concurrency_overlaps_startup_only() {
        // Two identical jobs concurrently vs sequentially: concurrent pays
        // startup once, sequential twice; work time identical.
        let engine = Engine::unbounded();
        engine.put_records("in", (0..50).map(|i| format!("w{i}"))).unwrap();

        let mut wf = Workflow::new(&engine, "conc");
        wf.run_stage(vec![identity_job("in", "c1", false), identity_job("in", "c2", false)])
            .unwrap();
        let conc = wf.finish(&[]);

        let mut wf = Workflow::new(&engine, "seq");
        wf.run_job(identity_job("in", "s1", false)).unwrap();
        wf.run_job(identity_job("in", "s2", false)).unwrap();
        let seq = wf.finish(&[]);

        let startup = engine.cost.job_startup_s;
        assert!((seq.sim_seconds - conc.sim_seconds - startup).abs() < 1e-6);
    }

    #[test]
    fn failure_marks_workflow() {
        let engine = Engine::new(SimHdfs::new(10, 1));
        // Input barely fits; job output won't.
        {
            let mut fs = engine.hdfs().lock();
            fs.put(
                "in",
                crate::hdfs::DfsFile {
                    records: vec!["aaaa".to_string().to_bytes()],
                    text_bytes: 5,
                    replication: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        }
        use crate::codec::Rec;
        let mut wf = Workflow::new(&engine, "fail");
        // Job emits 3 copies -> won't fit in remaining 5 bytes.
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&w, &w);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)?;
                out.emit(&k)?;
                out.emit(&k)
            });
        let spec = JobSpec::map_reduce(
            "explode",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            1,
            "out",
        );
        let err = wf.run_job(spec).unwrap_err();
        assert!(err.is_disk_full());
        let stats = wf.finish_failed(&err);
        assert!(!stats.succeeded);
        assert!(stats.failure.unwrap().contains("full"));
        // Further stages refused.
    }

    #[test]
    fn dead_workflow_refuses_stages() {
        let engine = Engine::new(SimHdfs::new(1, 1));
        let mut wf = Workflow::new(&engine, "dead");
        assert!(wf.run_job(identity_job("missing", "x", false)).is_err());
        // The refusal is the typed WorkflowDead, not a stringly error.
        let err = wf.run_job(identity_job("missing", "y", false)).unwrap_err();
        assert!(matches!(err, MrError::WorkflowDead));
    }

    #[test]
    fn failed_stage_outputs_are_cleaned_up() {
        // Regression for the intermediate-output leak: a stage of two jobs
        // where the SECOND fails used to leave the first job's committed
        // output on the DFS forever, because outputs were only registered
        // as intermediates after the whole stage succeeded.
        let engine = Engine::unbounded();
        engine.put_records("in", (0..20).map(|i| format!("w{i}"))).unwrap();
        let mut wf = Workflow::new(&engine, "leak");
        let err = wf
            .run_stage(vec![
                identity_job("in", "good-out", false),
                identity_job("no-such-input", "bad-out", false),
            ])
            .unwrap_err();
        assert!(engine.hdfs().lock().exists("good-out"), "first job committed its output");
        let stats = wf.finish_failed(&err);
        assert!(!stats.succeeded);
        assert!(
            !engine.hdfs().lock().exists("good-out"),
            "failed stage's partial output must be deleted by finish_failed"
        );
    }

    #[test]
    fn retry_stage_recovers_from_task_exhaustion() {
        // max_attempts=1 turns any injected task failure into a stage
        // failure; the epoch bump on retry re-draws the fault and (with a
        // low probability) the re-run succeeds.
        let faults = FaultConfig::with_probability(0.05, 7).with_max_attempts(1);
        let mk_engine = || {
            let engine = Engine::unbounded().with_workers(2).with_faults(faults.clone());
            engine.put_records("in", (0..200).map(|i| format!("w{i}"))).unwrap();
            engine
        };
        // Find a seed-independent victim: scan outputs until FailFast dies.
        let engine = mk_engine();
        let mut failing: Option<String> = None;
        for i in 0..64 {
            let out = format!("out{i}");
            let mut wf = Workflow::new(&engine, "probe");
            if wf.run_job(identity_job("in", &out, false)).is_err() {
                failing = Some(out);
                break;
            }
        }
        let out = failing.expect("some job name should draw a failure at p=0.05 over 64 tries");

        // FailFast: dead workflow.
        let engine = mk_engine();
        let mut wf = Workflow::new(&engine, "ff");
        let err = wf.run_job(identity_job("in", &out, false)).unwrap_err();
        assert!(err.is_task_exhausted());
        let ff = wf.finish_failed(&err);
        assert!(!ff.succeeded);

        // RetryStage: recovers, output identical to a fault-free run.
        let engine = mk_engine();
        let mut wf = Workflow::new(&engine, "retry")
            .with_policy(RecoveryPolicy::RetryStage { max_retries: 3, backoff_s: 5.0 });
        wf.run_job(identity_job("in", &out, false)).unwrap();
        let stats = wf.finish(&[&out]);
        assert!(stats.succeeded);
        assert!(stats.stage_retries >= 1);
        assert!(stats.backoff_seconds > 0.0);
        let got = engine.hdfs().lock().get(&out).unwrap().records.clone();

        let clean = Engine::unbounded().with_workers(2);
        clean.put_records("in", (0..200).map(|i| format!("w{i}"))).unwrap();
        let mut wf = Workflow::new(&clean, "clean");
        wf.run_job(identity_job("in", &out, false)).unwrap();
        wf.finish(&[&out]);
        assert_eq!(got, clean.hdfs().lock().get(&out).unwrap().records);
    }

    #[test]
    fn degrade_on_disk_full_recovers() {
        // Size the DFS from a probe run so the output fits at replication
        // 1 but not at the default replication 2.
        let probe = Engine::unbounded();
        probe.put_records("in", (0..40).map(|i| format!("word{i}"))).unwrap();
        let in_text = probe.hdfs().lock().usage(); // unbounded => replication 1
        let out_text = probe.run_job(&identity_job("in", "out", false)).unwrap().output_text_bytes;
        let capacity = 2 * in_text + out_text + out_text / 2;

        let mk = |policy: RecoveryPolicy| {
            let engine = Engine::new(SimHdfs::new(capacity, 2));
            engine.put_records("in", (0..40).map(|i| format!("word{i}"))).unwrap();
            let mut wf = Workflow::new(&engine, "deg").with_policy(policy);
            let res = wf.run_job(identity_job("in", "out", false));
            (res, wf.finish(&["out"]))
        };
        let (res, ff) = mk(RecoveryPolicy::FailFast);
        assert!(res.unwrap_err().is_disk_full());
        assert!(!ff.succeeded);

        let (res, deg) = mk(RecoveryPolicy::DegradeOnDiskFull);
        res.unwrap();
        assert!(deg.succeeded);
        assert!(deg.degraded_replication);
        assert_eq!(deg.stage_retries, 1);
    }

    #[test]
    fn degrade_at_replication_one_fails_fast() {
        // Regression: when the stage is already writing at replication 1
        // there is nothing to degrade — the policy must surface the
        // original DiskFull immediately, not burn a pointless retry.
        let probe = Engine::unbounded();
        probe.put_records("in", (0..40).map(|i| format!("word{i}"))).unwrap();
        let in_text = probe.hdfs().lock().usage(); // unbounded => replication 1
        let out_text = probe.run_job(&identity_job("in", "out", false)).unwrap().output_text_bytes;

        let engine = Engine::new(SimHdfs::new(in_text + out_text / 2, 1));
        engine.put_records("in", (0..40).map(|i| format!("word{i}"))).unwrap();
        let mut wf = Workflow::new(&engine, "deg1").with_policy(RecoveryPolicy::DegradeOnDiskFull);
        let err = wf.run_job(identity_job("in", "out", false)).unwrap_err();
        assert!(err.is_disk_full());
        let stats = wf.finish_failed(&err);
        assert!(!stats.succeeded);
        assert_eq!(stats.stage_retries, 0, "no retry can help at replication 1");
        assert!(!stats.degraded_replication);

        // An explicit per-spec replication of 1 is equally non-degradable,
        // even when the DFS default is higher.
        let engine = Engine::new(SimHdfs::new(2 * in_text + out_text / 2, 2));
        engine.put_records("in", (0..40).map(|i| format!("word{i}"))).unwrap();
        let mut wf = Workflow::new(&engine, "deg2").with_policy(RecoveryPolicy::DegradeOnDiskFull);
        let mut spec = identity_job("in", "out", false);
        spec.replication = Some(1);
        let err = wf.run_job(spec).unwrap_err();
        assert!(err.is_disk_full());
        assert_eq!(wf.stats().stage_retries, 0);
    }

    #[test]
    fn resume_skips_completed_stages() {
        use crate::trace::{MemorySink, TraceSink};
        use std::sync::Arc;

        let sink = MemorySink::new();
        let engine = Engine::unbounded().with_trace(sink.clone() as Arc<dyn TraceSink>);
        engine.put_records("in", (0..50).map(|i| format!("w{}", i % 7))).unwrap();

        // First driver completes stages A and B, then "crashes" (dropped
        // without finish); its committed outputs stay on the DFS.
        let mut wf = Workflow::new(&engine, "crashed");
        wf.run_job(identity_job("in", "a", false)).unwrap();
        wf.run_job(identity_job("a", "b", false)).unwrap();
        drop(wf);
        sink.take();

        // The new driver resubmits the same plan plus the unfinished tail.
        let mut wf =
            Workflow::resume(&engine, "resumed").with_policy(RecoveryPolicy::CheckpointRestart);
        wf.run_job(identity_job("in", "a", false)).unwrap();
        wf.run_job(identity_job("a", "b", false)).unwrap();
        wf.run_job(identity_job("b", "c", false)).unwrap();
        let stats = wf.finish(&["c"]);
        assert!(stats.succeeded);
        assert_eq!(stats.stages_skipped, 2);
        assert_eq!(stats.mr_cycles, 1, "only the incomplete stage runs");
        assert_eq!(stats.jobs.len(), 1);
        assert_eq!(stats.jobs[0].name, "b->c");

        // Trace evidence: job spans exist only for the re-run stage, and
        // the skipped prefix shows up as checkpoint_resume events.
        let events = sink.events();
        let spans: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::JobSpan { job, .. } => Some(job.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec!["b->c"]);
        let skipped: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::CheckpointResume { stage, .. } => Some(*stage),
                _ => None,
            })
            .collect();
        assert_eq!(skipped, vec![0, 1]);

        // The resumed result matches an uninterrupted run bit-for-bit.
        let clean = Engine::unbounded();
        clean.put_records("in", (0..50).map(|i| format!("w{}", i % 7))).unwrap();
        let mut wf = Workflow::new(&clean, "clean");
        wf.run_job(identity_job("in", "a", false)).unwrap();
        wf.run_job(identity_job("a", "b", false)).unwrap();
        wf.run_job(identity_job("b", "c", false)).unwrap();
        wf.finish(&["c"]);
        assert_eq!(
            engine.hdfs().lock().get("c").unwrap().records,
            clean.hdfs().lock().get("c").unwrap().records
        );
    }

    #[test]
    fn resume_cleans_partial_stage_outputs() {
        // A concurrent stage that crashed after committing only one of its
        // two outputs is incomplete: resume must delete the partial output
        // and re-run the whole stage.
        let engine = Engine::unbounded();
        engine.put_records("in", (0..30).map(|i| format!("w{}", i % 5))).unwrap();
        let mut wf = Workflow::new(&engine, "crashed");
        wf.run_job(identity_job("in", "a", false)).unwrap();
        // Simulate the crash mid-stage: only "b1" of {b1, b2} committed.
        wf.run_job(identity_job("a", "b1", false)).unwrap();
        drop(wf);
        assert!(engine.hdfs().lock().exists("b1"));

        let mut wf = Workflow::resume(&engine, "resumed");
        wf.run_job(identity_job("in", "a", false)).unwrap();
        wf.run_stage(vec![identity_job("a", "b1", false), identity_job("a", "b2", false)]).unwrap();
        let stats = wf.finish(&["b1", "b2"]);
        assert!(stats.succeeded);
        assert_eq!(stats.stages_skipped, 1, "only stage A was checkpointed");
        assert_eq!(stats.jobs.len(), 2, "the partial stage re-runs both jobs");
        assert!(engine.hdfs().lock().exists("b1"));
        assert!(engine.hdfs().lock().exists("b2"));
    }
}
