//! Structured execution tracing: typed events, pluggable sinks, and a
//! Chrome trace-event exporter on the *simulated* timeline.
//!
//! The paper's whole evaluation is an observability exercise — every figure
//! is a function of MR cycles, HDFS/shuffle bytes, and where redundancy is
//! paid. End-of-run aggregates ([`crate::JobStats`]/[`crate::WorkflowStats`])
//! answer *how much*; tracing answers *where*: which job inflated the
//! shuffle, how tasks were laid out on the cost model's timeline, which
//! task attempts were wasted on injected faults.
//!
//! ## Event model
//!
//! An [`Engine`](crate::Engine) with an attached [`TraceSink`] emits
//! [`TraceEvent`]s as it executes:
//!
//! * per job: [`TraceEvent::JobStart`], per-task [`TraceEvent::TaskSpan`]s
//!   (simulated start/duration derived from the cost model's phase times,
//!   apportioned by per-task bytes), [`TraceEvent::TaskRetry`] for wasted
//!   fault-injected attempts, [`TraceEvent::ShufflePartition`] records, and
//!   a closing [`TraceEvent::JobEnd`] carrying the job's counters;
//! * per workflow: [`TraceEvent::WorkflowStart`]/[`TraceEvent::WorkflowEnd`]
//!   plus [`TraceEvent::StageStart`]/[`TraceEvent::JobSpan`]/
//!   [`TraceEvent::StageEnd`] placing every job on the *absolute* simulated
//!   timeline (task spans inside a job are relative to the job's start).
//!
//! Tracing is strictly opt-in: without a sink the engine emits nothing and
//! constructs no events (the closure passed to the internal emit hook never
//! runs), so the disabled path costs one `Option` check per site.
//!
//! ## Sinks
//!
//! * [`MemorySink`] buffers events in memory (tests, programmatic access);
//! * [`JsonlSink`] appends one JSON object per event to a file;
//! * [`ChromeTraceSink`] writes the Chrome trace-event format: open the
//!   file in [Perfetto](https://ui.perfetto.dev) (or `chrome://tracing`)
//!   to see workflows as processes and job/task lanes as threads, laid out
//!   in simulated microseconds;
//! * [`MultiSink`] fans out to several sinks.

use crate::counters::OpCounters;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which phase of a job a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaskPhase {
    /// Map phase (also map-only jobs).
    Map,
    /// Reduce phase.
    Reduce,
}

impl TaskPhase {
    /// Stable lowercase name (used in JSON output).
    pub fn as_str(self) -> &'static str {
        match self {
            TaskPhase::Map => "map",
            TaskPhase::Reduce => "reduce",
        }
    }
}

/// One structured trace event. All times are *simulated* seconds from the
/// engine's [`CostModel`](crate::CostModel); byte counts are the engine's
/// text-size accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A workflow began.
    WorkflowStart {
        /// Workflow report label.
        label: String,
    },
    /// A workflow stage (one MR cycle; possibly several concurrent jobs)
    /// began at `sim_start` on the workflow's absolute timeline.
    StageStart {
        /// Zero-based stage index within the workflow.
        stage: u64,
        /// Absolute simulated second the stage starts at.
        sim_start: f64,
    },
    /// A job began executing.
    JobStart {
        /// Job name.
        job: String,
    },
    /// One task's span on the simulated timeline, *relative to its job's
    /// start*. The cost model's phase time is apportioned over the phase's
    /// tasks by their byte share (record share when no bytes moved), and
    /// tasks are laid end-to-end — the aggregate-bandwidth reading of the
    /// cost model, where a phase's tasks share the cluster's full I/O rate.
    TaskSpan {
        /// Job name.
        job: String,
        /// Map or reduce.
        phase: TaskPhase,
        /// Task index within the phase.
        task: u64,
        /// Input records processed by this task.
        records: u64,
        /// Encoded input bytes for map tasks; shuffle bytes routed to this
        /// partition for reduce tasks.
        bytes: u64,
        /// Simulated start second, relative to the job's start.
        start: f64,
        /// Simulated duration in seconds.
        dur: f64,
    },
    /// Injected fault retries: task `task` needed `wasted_attempts` extra
    /// attempts before succeeding.
    TaskRetry {
        /// Job name.
        job: String,
        /// Map or reduce.
        phase: TaskPhase,
        /// Task index within the phase.
        task: u64,
        /// Number of failed (retried) attempts.
        wasted_attempts: u64,
    },
    /// A simulated node died during the job's map→reduce handoff; the
    /// completed map outputs it held were lost and the affected map tasks
    /// re-executed.
    NodeLoss {
        /// Job name.
        job: String,
        /// Simulated node index that died.
        node: u64,
        /// Completed map tasks whose outputs were lost (re-executed).
        maps_lost: u64,
    },
    /// A task was selected as a straggler, running `slowdown ×` its
    /// normal time.
    Straggler {
        /// Job name.
        job: String,
        /// Map or reduce.
        phase: TaskPhase,
        /// Task index within the phase.
        task: u64,
        /// Injected slowdown factor.
        slowdown: f64,
    },
    /// A speculative backup attempt was launched for a straggler.
    SpeculativeTask {
        /// Job name.
        job: String,
        /// Map or reduce.
        phase: TaskPhase,
        /// Task index within the phase.
        task: u64,
        /// True if the backup finished before the original attempt.
        backup_won: bool,
    },
    /// The verified data plane caught a checksum mismatch — a corrupt
    /// shuffle bucket at reducer fetch, or a corrupt DFS block at read.
    CorruptionDetected {
        /// Job name.
        job: String,
        /// Where the mismatch was caught (`"shuffle"` or `"dfs"`).
        site: &'static str,
        /// Producing map-task index (shuffle) or block index (dfs).
        task: u64,
    },
    /// Recovery from a detected corruption: the producing map task was
    /// re-executed (fetch-failure semantics) or the DFS block re-read
    /// from a replica. Always paired with a
    /// [`TraceEvent::CorruptionDetected`].
    Refetch {
        /// Job name.
        job: String,
        /// Where the refetch happened (`"shuffle"` or `"dfs"`).
        site: &'static str,
        /// Producing map-task index (shuffle) or block index (dfs).
        task: u64,
    },
    /// Skip-bad-records mode quarantined undecodable input records to the
    /// job's bad-record side file instead of failing the task.
    RecordSkipped {
        /// Job name.
        job: String,
        /// Task index that hit the bad records.
        task: u64,
        /// Records quarantined by this task.
        records: u64,
    },
    /// A job's broadcast side files were distributed to its map tasks
    /// through the simulated distributed cache.
    Broadcast {
        /// Job name.
        job: String,
        /// Number of broadcast side files.
        files: u64,
        /// Total text bytes of the payload (one copy).
        bytes: u64,
        /// Bytes moved to distribute it (one copy per map task).
        ship_bytes: u64,
    },
    /// The planner's estimated output cardinality for a job against what
    /// the job actually produced — the per-job q-error feedback loop.
    CardinalityEstimate {
        /// Job name.
        job: String,
        /// Estimated output records.
        estimated: f64,
        /// Actual output records.
        actual: u64,
        /// `max(est/actual, actual/est)`, both clamped to ≥ 1.
        q_error: f64,
    },
    /// Shuffle bytes/records routed to one reduce partition.
    ShufflePartition {
        /// Job name.
        job: String,
        /// Reduce partition index.
        partition: u64,
        /// Shuffle records routed to this partition.
        records: u64,
        /// Shuffle bytes routed to this partition.
        bytes: u64,
    },
    /// A job's memory high-water marks (see the matching
    /// [`crate::JobStats`] fields).
    MemoryHighWater {
        /// Job name.
        job: String,
        /// Largest merged reduce-partition spill-arena footprint in bytes.
        peak_arena_bytes: u64,
        /// Largest per-task live byte footprint (map emitter buffers,
        /// combiner coexistence included, or a reduce partition).
        peak_task_live_bytes: u64,
        /// Largest spill-arena record-index length (entries).
        peak_spill_entries: u64,
    },
    /// Summary of one profiling histogram recorded by a job (full bucket
    /// detail lives in [`crate::JobStats::metrics`]).
    HistogramSummary {
        /// Job name.
        job: String,
        /// Metric name (see [`crate::metrics::name`]).
        metric: String,
        /// Number of recorded values.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// Median (bucket upper bound, clamped to max).
        p50: u64,
        /// 95th percentile.
        p95: u64,
        /// 99th percentile.
        p99: u64,
        /// Largest recorded value.
        max: u64,
    },
    /// The shuffle sort configuration and work of one map-reduce job:
    /// which [`SortStrategy`](crate::SortStrategy) ordered the record
    /// indexes, how many map-side-sorted runs reached the reduce side,
    /// and how many index entries the reducers brought into canonical
    /// order. Work counts, not wall-clock: the event stream must stay
    /// worker-count- and fault-regime-invariant.
    SortPlan {
        /// Job name.
        job: String,
        /// Sort strategy tag (`"radix"` or `"comparison"`).
        strategy: &'static str,
        /// Map-side sorted runs absorbed across all reduce partitions
        /// (0 under the comparison strategy: nothing arrives sorted).
        map_sorted_runs: u64,
        /// Index entries ordered reduce-side (merged or fully sorted).
        merge_entries: u64,
    },
    /// A job finished; carries its headline counters.
    JobEnd {
        /// Job name.
        job: String,
        /// Simulated seconds for the job run in isolation (startup + work).
        sim_seconds: f64,
        /// Fixed startup portion of `sim_seconds`.
        startup_seconds: f64,
        /// HDFS bytes read.
        hdfs_read_bytes: u64,
        /// HDFS bytes written (× replication).
        hdfs_write_bytes: u64,
        /// Shuffle bytes (0 for map-only jobs).
        shuffle_bytes: u64,
        /// Wasted task attempts from injected faults.
        task_retries: u64,
        /// Simulated seconds lost to faults (wasted attempts, re-executed
        /// maps, speculative duplicates); included in `sim_seconds`.
        retry_seconds: f64,
        /// Operator-level counters recorded by the job's operators.
        ops: OpCounters,
    },
    /// A job's placement on the workflow's *absolute* simulated timeline:
    /// `sim_end − sim_start − startup_seconds` is the job's work time, and
    /// per stage `max(startup) + Σ work` over its [`TraceEvent::JobSpan`]s
    /// reconstructs the stage makespan exactly.
    JobSpan {
        /// Job name.
        job: String,
        /// Zero-based stage index the job ran in.
        stage: u64,
        /// Absolute simulated start second (== the stage's start).
        sim_start: f64,
        /// Absolute simulated end second (start + startup + own work).
        sim_end: f64,
        /// Fixed startup seconds included in the span.
        startup_seconds: f64,
    },
    /// A failed stage attempt is being re-run by a
    /// [`RecoveryPolicy`](crate::workflow::RecoveryPolicy).
    StageRetry {
        /// Zero-based stage-attempt index of the attempt that failed.
        stage: u64,
        /// Retry attempt number about to run (1-based).
        attempt: u32,
        /// Backoff seconds charged to the makespan before the re-run.
        backoff_seconds: f64,
        /// Display form of the error that failed the attempt.
        error: String,
    },
    /// A resumed workflow skipped a stage whose outputs were all already
    /// committed to the DFS (checkpoint hit; see
    /// [`crate::Workflow::resume`]).
    CheckpointResume {
        /// Zero-based stage index that was skipped.
        stage: u64,
        /// Number of jobs in the skipped stage.
        jobs: u64,
    },
    /// A stage completed at `sim_end` (start + max startup + Σ work).
    StageEnd {
        /// Zero-based stage index.
        stage: u64,
        /// Absolute simulated end second of the stage.
        sim_end: f64,
    },
    /// A workflow finished (successfully or not).
    WorkflowEnd {
        /// Workflow report label.
        label: String,
        /// Total simulated seconds (stage makespans summed).
        sim_seconds: f64,
        /// False when the workflow aborted (e.g. `DiskFull`).
        succeeded: bool,
    },
}

impl TraceEvent {
    /// Stable event-kind tag (the `"event"` field of the JSON form).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WorkflowStart { .. } => "workflow_start",
            TraceEvent::StageStart { .. } => "stage_start",
            TraceEvent::JobStart { .. } => "job_start",
            TraceEvent::TaskSpan { .. } => "task_span",
            TraceEvent::TaskRetry { .. } => "task_retry",
            TraceEvent::NodeLoss { .. } => "node_loss",
            TraceEvent::Straggler { .. } => "straggler",
            TraceEvent::SpeculativeTask { .. } => "speculative_task",
            TraceEvent::CorruptionDetected { .. } => "corruption_detected",
            TraceEvent::Refetch { .. } => "refetch",
            TraceEvent::RecordSkipped { .. } => "record_skipped",
            TraceEvent::Broadcast { .. } => "broadcast",
            TraceEvent::CardinalityEstimate { .. } => "cardinality_estimate",
            TraceEvent::ShufflePartition { .. } => "shuffle_partition",
            TraceEvent::MemoryHighWater { .. } => "memory_high_water",
            TraceEvent::HistogramSummary { .. } => "histogram_summary",
            TraceEvent::SortPlan { .. } => "sort_plan",
            TraceEvent::JobEnd { .. } => "job_end",
            TraceEvent::JobSpan { .. } => "job_span",
            TraceEvent::StageRetry { .. } => "stage_retry",
            TraceEvent::CheckpointResume { .. } => "checkpoint_resume",
            TraceEvent::StageEnd { .. } => "stage_end",
            TraceEvent::WorkflowEnd { .. } => "workflow_end",
        }
    }

    /// Render as one JSON object (the [`JsonlSink`] line format).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.str("event", self.kind());
        match self {
            TraceEvent::WorkflowStart { label } => {
                o.str("label", label);
            }
            TraceEvent::StageStart { stage, sim_start } => {
                o.u64("stage", *stage);
                o.f64("sim_start", *sim_start);
            }
            TraceEvent::JobStart { job } => {
                o.str("job", job);
            }
            TraceEvent::TaskSpan { job, phase, task, records, bytes, start, dur } => {
                o.str("job", job);
                o.str("phase", phase.as_str());
                o.u64("task", *task);
                o.u64("records", *records);
                o.u64("bytes", *bytes);
                o.f64("start", *start);
                o.f64("dur", *dur);
            }
            TraceEvent::TaskRetry { job, phase, task, wasted_attempts } => {
                o.str("job", job);
                o.str("phase", phase.as_str());
                o.u64("task", *task);
                o.u64("wasted_attempts", *wasted_attempts);
            }
            TraceEvent::NodeLoss { job, node, maps_lost } => {
                o.str("job", job);
                o.u64("node", *node);
                o.u64("maps_lost", *maps_lost);
            }
            TraceEvent::Straggler { job, phase, task, slowdown } => {
                o.str("job", job);
                o.str("phase", phase.as_str());
                o.u64("task", *task);
                o.f64("slowdown", *slowdown);
            }
            TraceEvent::SpeculativeTask { job, phase, task, backup_won } => {
                o.str("job", job);
                o.str("phase", phase.as_str());
                o.u64("task", *task);
                o.bool("backup_won", *backup_won);
            }
            TraceEvent::CorruptionDetected { job, site, task }
            | TraceEvent::Refetch { job, site, task } => {
                o.str("job", job);
                o.str("site", site);
                o.u64("task", *task);
            }
            TraceEvent::RecordSkipped { job, task, records } => {
                o.str("job", job);
                o.u64("task", *task);
                o.u64("records", *records);
            }
            TraceEvent::Broadcast { job, files, bytes, ship_bytes } => {
                o.str("job", job);
                o.u64("files", *files);
                o.u64("bytes", *bytes);
                o.u64("ship_bytes", *ship_bytes);
            }
            TraceEvent::CardinalityEstimate { job, estimated, actual, q_error } => {
                o.str("job", job);
                o.f64("estimated", *estimated);
                o.u64("actual", *actual);
                o.f64("q_error", *q_error);
            }
            TraceEvent::ShufflePartition { job, partition, records, bytes } => {
                o.str("job", job);
                o.u64("partition", *partition);
                o.u64("records", *records);
                o.u64("bytes", *bytes);
            }
            TraceEvent::MemoryHighWater {
                job,
                peak_arena_bytes,
                peak_task_live_bytes,
                peak_spill_entries,
            } => {
                o.str("job", job);
                o.u64("peak_arena_bytes", *peak_arena_bytes);
                o.u64("peak_task_live_bytes", *peak_task_live_bytes);
                o.u64("peak_spill_entries", *peak_spill_entries);
            }
            TraceEvent::HistogramSummary { job, metric, count, sum, p50, p95, p99, max } => {
                o.str("job", job);
                o.str("metric", metric);
                o.u64("count", *count);
                o.u64("sum", *sum);
                o.u64("p50", *p50);
                o.u64("p95", *p95);
                o.u64("p99", *p99);
                o.u64("max", *max);
            }
            TraceEvent::SortPlan { job, strategy, map_sorted_runs, merge_entries } => {
                o.str("job", job);
                o.str("strategy", strategy);
                o.u64("map_sorted_runs", *map_sorted_runs);
                o.u64("merge_entries", *merge_entries);
            }
            TraceEvent::JobEnd {
                job,
                sim_seconds,
                startup_seconds,
                hdfs_read_bytes,
                hdfs_write_bytes,
                shuffle_bytes,
                task_retries,
                retry_seconds,
                ops,
            } => {
                o.str("job", job);
                o.f64("sim_seconds", *sim_seconds);
                o.f64("startup_seconds", *startup_seconds);
                o.u64("hdfs_read_bytes", *hdfs_read_bytes);
                o.u64("hdfs_write_bytes", *hdfs_write_bytes);
                o.u64("shuffle_bytes", *shuffle_bytes);
                o.u64("task_retries", *task_retries);
                o.f64("retry_seconds", *retry_seconds);
                o.raw("ops", &ops.to_json());
            }
            TraceEvent::JobSpan { job, stage, sim_start, sim_end, startup_seconds } => {
                o.str("job", job);
                o.u64("stage", *stage);
                o.f64("sim_start", *sim_start);
                o.f64("sim_end", *sim_end);
                o.f64("startup_seconds", *startup_seconds);
            }
            TraceEvent::StageRetry { stage, attempt, backoff_seconds, error } => {
                o.u64("stage", *stage);
                o.u64("attempt", u64::from(*attempt));
                o.f64("backoff_seconds", *backoff_seconds);
                o.str("error", error);
            }
            TraceEvent::CheckpointResume { stage, jobs } => {
                o.u64("stage", *stage);
                o.u64("jobs", *jobs);
            }
            TraceEvent::StageEnd { stage, sim_end } => {
                o.u64("stage", *stage);
                o.f64("sim_end", *sim_end);
            }
            TraceEvent::WorkflowEnd { label, sim_seconds, succeeded } => {
                o.str("label", label);
                o.f64("sim_seconds", *sim_seconds);
                o.bool("succeeded", *succeeded);
            }
        }
        o.finish()
    }
}

/// A consumer of [`TraceEvent`]s. Implementations must be thread-safe: the
/// engine emits from the driver thread but sinks are shared via `Arc`
/// across engines and workflows.
pub trait TraceSink: Send + Sync {
    /// Receive one event. Called in emission order per engine.
    fn event(&self, ev: &TraceEvent);

    /// Flush/complete any buffered output (file sinks write their trailer
    /// here). Safe to call more than once.
    fn finish(&self) {}
}

// ---------------------------------------------------------------------------
// JSON plumbing (the workspace's serde is a no-op stub, so the sinks write
// JSON by hand).
// ---------------------------------------------------------------------------

/// Append `s` to `out` with JSON string escaping (quotes not included).
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Format an `f64` as a JSON number. `NaN`/infinities (which JSON cannot
/// represent) degrade to `null`.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal incremental JSON-object writer. Used by the sinks, and public
/// because every hand-rolled JSON producer in the workspace (the serde
/// stand-in is a no-op) wants exactly this: ordered keys, correct escaping,
/// `null` for non-finite floats.
#[derive(Default)]
pub struct JsonObject {
    buf: String,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_json_into(k, &mut self.buf);
        self.buf.push_str("\":");
    }

    /// Append a string field (escaped).
    pub fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push('"');
        escape_json_into(v, &mut self.buf);
        self.buf.push('"');
    }

    /// Append an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    /// Append a float field (`null` when non-finite).
    pub fn f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&json_f64(v));
    }

    /// Append a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Insert a pre-rendered JSON value verbatim.
    pub fn raw(&mut self, k: &str, json: &str) {
        self.key(k);
        self.buf.push_str(json);
    }

    /// Close the object and return its JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Validate that `s` is one complete JSON value (with optional surrounding
/// whitespace). A tiny recursive-descent checker — the workspace has no
/// JSON dependency, and the sinks hand-write their output, so tests and
/// smoke checks use this to prove the emitted bytes actually parse.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validate a JSON Lines document (e.g. a [`JsonlSink`] event log): every
/// non-empty line must be one complete JSON value. On failure, reports the
/// zero-based line index — the offending event's position in the stream —
/// alongside the inner parse error, instead of leaving the caller to
/// bisect the file.
pub fn validate_jsonl(s: &str) -> Result<(), String> {
    for (line_no, line) in s.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {line_no} (event {line_no}): {e}"))?;
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Result<(), String> {
    if depth > 128 {
        return Err("nesting too deep".into());
    }
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte {c:#x} in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad number at byte {start}"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// In-memory sink: buffers every event for programmatic inspection
/// (tests, golden-trace comparisons).
#[derive(Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// New empty sink, ready to share with an engine.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of every event received so far, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().clone()
    }

    /// Drain and return the buffered events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl TraceSink for MemorySink {
    fn event(&self, ev: &TraceEvent) {
        self.events.lock().push(ev.clone());
    }
}

/// File sink writing one JSON object per line (JSON Lines). Write errors
/// after creation are swallowed — tracing is telemetry and must never fail
/// the simulated computation.
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) the file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink { out: Mutex::new(BufWriter::new(File::create(path)?)) })
    }
}

impl TraceSink for JsonlSink {
    fn event(&self, ev: &TraceEvent) {
        let mut out = self.out.lock();
        let _ = writeln!(out, "{}", ev.to_json());
    }

    fn finish(&self) {
        let _ = self.out.lock().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.finish();
    }
}

struct ChromeState {
    /// Serialized trace-event objects, in emission order.
    events: Vec<String>,
    /// Current workflow's process id; workflows map to Chrome processes.
    pid: u64,
    next_pid: u64,
    /// Absolute simulated offset applied to job-relative task spans.
    base: f64,
    /// True between `StageStart` and `StageEnd`: job bars then come from
    /// `JobSpan` (absolute placement) rather than `JobEnd`.
    stage_active: bool,
    /// Task lane (Chrome thread id) per job name.
    lanes: HashMap<String, u64>,
    next_tid: u64,
    wrote: bool,
}

impl ChromeState {
    fn new() -> Self {
        ChromeState {
            events: Vec::new(),
            pid: 1,
            next_pid: 2,
            base: 0.0,
            stage_active: false,
            lanes: HashMap::new(),
            next_tid: FIRST_TASK_LANE,
            wrote: false,
        }
    }
}

/// Chrome thread-id of the workflow-summary lane.
const WORKFLOW_LANE: u64 = 0;
/// Chrome thread-id of the job-bars lane.
const JOB_LANE: u64 = 1;
/// First thread-id handed out to per-job task lanes.
const FIRST_TASK_LANE: u64 = 8;

/// Sink producing a Chrome trace-event file (open in
/// [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`).
///
/// Layout: each workflow is a Chrome *process* (pid); within it, lane 0
/// holds the whole-workflow span, lane 1 the per-job bars on the absolute
/// simulated timeline, and each job gets its own task lane with the map
/// and reduce task spans laid end-to-end. Retries appear as instant
/// events on the job's task lane. Timestamps are simulated microseconds.
///
/// The file is written by [`TraceSink::finish`] (also on drop).
pub struct ChromeTraceSink {
    path: PathBuf,
    state: Mutex<ChromeState>,
}

impl ChromeTraceSink {
    /// Sink that will write `path` when finished.
    pub fn create(path: impl Into<PathBuf>) -> Self {
        ChromeTraceSink { path: path.into(), state: Mutex::new(ChromeState::new()) }
    }

    fn meta(state: &mut ChromeState, tid: Option<u64>, what: &str, name: &str) {
        let mut o = JsonObject::new();
        o.str("ph", "M");
        o.u64("pid", state.pid);
        if let Some(tid) = tid {
            o.u64("tid", tid);
        }
        o.str("name", what);
        let mut args = JsonObject::new();
        args.str("name", name);
        o.raw("args", &args.finish());
        state.events.push(o.finish());
    }

    fn span(state: &mut ChromeState, tid: u64, name: &str, ts: f64, dur: f64, args: JsonObject) {
        let mut o = JsonObject::new();
        o.str("ph", "X");
        o.u64("pid", state.pid);
        o.u64("tid", tid);
        o.str("name", name);
        o.f64("ts", ts * 1e6);
        o.f64("dur", dur * 1e6);
        o.raw("args", &args.finish());
        state.events.push(o.finish());
    }

    fn instant(state: &mut ChromeState, tid: u64, name: &str, args: JsonObject) {
        let mut o = JsonObject::new();
        o.str("ph", "i");
        o.u64("pid", state.pid);
        o.u64("tid", tid);
        o.str("name", name);
        o.f64("ts", state.base * 1e6);
        o.str("s", "t");
        o.raw("args", &args.finish());
        state.events.push(o.finish());
    }

    fn task_lane(state: &mut ChromeState, job: &str) -> u64 {
        if let Some(&tid) = state.lanes.get(job) {
            return tid;
        }
        let tid = state.next_tid;
        state.next_tid += 1;
        state.lanes.insert(job.to_string(), tid);
        Self::meta(state, Some(tid), "thread_name", &format!("tasks:{job}"));
        tid
    }

    fn write_out(&self, state: &mut ChromeState) {
        state.wrote = true;
        let file = match File::create(&self.path) {
            Ok(f) => f,
            Err(_) => return,
        };
        let mut w = BufWriter::new(file);
        let _ = w.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, ev) in state.events.iter().enumerate() {
            let sep = if i + 1 == state.events.len() { "\n" } else { ",\n" };
            let _ = w.write_all(ev.as_bytes());
            let _ = w.write_all(sep.as_bytes());
        }
        let _ = w.write_all(b"]}\n");
        let _ = w.flush();
    }
}

impl TraceSink for ChromeTraceSink {
    fn event(&self, ev: &TraceEvent) {
        let state = &mut *self.state.lock();
        match ev {
            TraceEvent::WorkflowStart { label } => {
                state.pid = state.next_pid;
                state.next_pid += 1;
                state.base = 0.0;
                state.stage_active = false;
                state.lanes.clear();
                state.next_tid = FIRST_TASK_LANE;
                Self::meta(state, None, "process_name", label);
                Self::meta(state, Some(WORKFLOW_LANE), "thread_name", "workflow");
                Self::meta(state, Some(JOB_LANE), "thread_name", "jobs");
            }
            TraceEvent::StageStart { sim_start, .. } => {
                state.base = *sim_start;
                state.stage_active = true;
            }
            TraceEvent::StageEnd { sim_end, .. } => {
                state.base = *sim_end;
                state.stage_active = false;
            }
            TraceEvent::JobStart { job } => {
                Self::task_lane(state, job);
            }
            TraceEvent::TaskSpan { job, phase, task, records, bytes, start, dur } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.u64("records", *records);
                args.u64("bytes", *bytes);
                let name = format!("{} {}", phase.as_str(), task);
                let ts = state.base + *start;
                Self::span(state, tid, &name, ts, *dur, args);
            }
            TraceEvent::TaskRetry { job, phase, task, wasted_attempts } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.u64("wasted_attempts", *wasted_attempts);
                Self::instant(state, tid, &format!("retry {} {}", phase.as_str(), task), args);
            }
            TraceEvent::NodeLoss { job, node, maps_lost } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.u64("maps_lost", *maps_lost);
                Self::instant(state, tid, &format!("node {node} lost"), args);
            }
            TraceEvent::Straggler { job, phase, task, slowdown } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.f64("slowdown", *slowdown);
                Self::instant(state, tid, &format!("straggler {} {}", phase.as_str(), task), args);
            }
            TraceEvent::SpeculativeTask { job, phase, task, backup_won } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.bool("backup_won", *backup_won);
                Self::instant(
                    state,
                    tid,
                    &format!("speculative {} {}", phase.as_str(), task),
                    args,
                );
            }
            TraceEvent::StageRetry { stage, attempt, backoff_seconds, error } => {
                let mut args = JsonObject::new();
                args.u64("attempt", u64::from(*attempt));
                args.f64("backoff_seconds", *backoff_seconds);
                args.str("error", error);
                Self::instant(state, JOB_LANE, &format!("stage {stage} retry"), args);
            }
            TraceEvent::CorruptionDetected { job, site, task } => {
                let tid = Self::task_lane(state, job);
                Self::instant(state, tid, &format!("corrupt {site} {task}"), JsonObject::new());
            }
            TraceEvent::Refetch { job, site, task } => {
                let tid = Self::task_lane(state, job);
                Self::instant(state, tid, &format!("refetch {site} {task}"), JsonObject::new());
            }
            TraceEvent::RecordSkipped { job, task, records } => {
                let tid = Self::task_lane(state, job);
                let mut args = JsonObject::new();
                args.u64("records", *records);
                Self::instant(state, tid, &format!("skipped records {task}"), args);
            }
            TraceEvent::CheckpointResume { stage, jobs } => {
                let mut args = JsonObject::new();
                args.u64("jobs", *jobs);
                Self::instant(state, JOB_LANE, &format!("stage {stage} checkpointed"), args);
            }
            TraceEvent::ShufflePartition { .. }
            | TraceEvent::Broadcast { .. }
            | TraceEvent::CardinalityEstimate { .. }
            | TraceEvent::MemoryHighWater { .. }
            | TraceEvent::HistogramSummary { .. }
            | TraceEvent::SortPlan { .. } => {
                // Per-partition/broadcast/estimate/profile/sort detail lives
                // in the JSONL log; the timeline view keeps only spans and
                // retries.
            }
            TraceEvent::JobEnd { job, sim_seconds, startup_seconds, task_retries, ops, .. } => {
                if !state.stage_active {
                    // Engine-only run (no workflow placing jobs): lay jobs
                    // end-to-end on the job lane.
                    let mut args = JsonObject::new();
                    args.f64("startup_seconds", *startup_seconds);
                    args.u64("task_retries", *task_retries);
                    args.raw("ops", &ops.to_json());
                    let base = state.base;
                    Self::span(state, JOB_LANE, job, base, *sim_seconds, args);
                    state.base += *sim_seconds;
                }
            }
            TraceEvent::JobSpan { job, sim_start, sim_end, startup_seconds, .. } => {
                let mut args = JsonObject::new();
                args.f64("startup_seconds", *startup_seconds);
                Self::span(state, JOB_LANE, job, *sim_start, *sim_end - *sim_start, args);
            }
            TraceEvent::WorkflowEnd { label, sim_seconds, succeeded } => {
                let mut args = JsonObject::new();
                args.bool("succeeded", *succeeded);
                Self::span(state, WORKFLOW_LANE, label, 0.0, *sim_seconds, args);
            }
        }
    }

    fn finish(&self) {
        let state = &mut *self.state.lock();
        self.write_out(state);
    }
}

impl Drop for ChromeTraceSink {
    fn drop(&mut self) {
        let mut taken = {
            let mut state = self.state.lock();
            if state.wrote {
                return;
            }
            std::mem::replace(&mut *state, ChromeState::new())
        };
        self.write_out(&mut taken);
    }
}

/// Fan-out sink: forwards every event (and `finish`) to each child sink.
pub struct MultiSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl MultiSink {
    /// Sink forwarding to all of `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        MultiSink { sinks }
    }
}

impl TraceSink for MultiSink {
    fn event(&self, ev: &TraceEvent) {
        for s in &self.sinks {
            s.event(ev);
        }
    }

    fn finish(&self) {
        for s in &self.sinks {
            s.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_valid_json() {
        let mut ops = OpCounters::new();
        ops.add("tg.unnest.out", 12);
        let events = vec![
            TraceEvent::WorkflowStart { label: "NTGA/\"C4\"\n".into() },
            TraceEvent::StageStart { stage: 0, sim_start: 0.0 },
            TraceEvent::JobStart { job: "j1".into() },
            TraceEvent::TaskSpan {
                job: "j1".into(),
                phase: TaskPhase::Map,
                task: 3,
                records: 100,
                bytes: 4096,
                start: 15.0,
                dur: 1.25,
            },
            TraceEvent::TaskRetry {
                job: "j1".into(),
                phase: TaskPhase::Reduce,
                task: 0,
                wasted_attempts: 2,
            },
            TraceEvent::NodeLoss { job: "j1".into(), node: 2, maps_lost: 5 },
            TraceEvent::Straggler {
                job: "j1".into(),
                phase: TaskPhase::Map,
                task: 1,
                slowdown: 6.0,
            },
            TraceEvent::SpeculativeTask {
                job: "j1".into(),
                phase: TaskPhase::Map,
                task: 1,
                backup_won: true,
            },
            TraceEvent::StageRetry {
                stage: 0,
                attempt: 1,
                backoff_seconds: 30.0,
                error: "disk \"full\"".into(),
            },
            TraceEvent::CorruptionDetected { job: "j1".into(), site: "shuffle", task: 4 },
            TraceEvent::Refetch { job: "j1".into(), site: "dfs", task: 0 },
            TraceEvent::RecordSkipped { job: "j1".into(), task: 2, records: 3 },
            TraceEvent::CheckpointResume { stage: 1, jobs: 2 },
            TraceEvent::ShufflePartition { job: "j1".into(), partition: 1, records: 7, bytes: 99 },
            TraceEvent::MemoryHighWater {
                job: "j1".into(),
                peak_arena_bytes: 4096,
                peak_task_live_bytes: 2048,
                peak_spill_entries: 128,
            },
            TraceEvent::HistogramSummary {
                job: "j1".into(),
                metric: "task.map.micros".into(),
                count: 4,
                sum: 1000,
                p50: 255,
                p95: 511,
                p99: 511,
                max: 400,
            },
            TraceEvent::SortPlan {
                job: "j1".into(),
                strategy: "radix",
                map_sorted_runs: 16,
                merge_entries: 4096,
            },
            TraceEvent::Broadcast { job: "j1".into(), files: 1, bytes: 640, ship_bytes: 2560 },
            TraceEvent::CardinalityEstimate {
                job: "j1".into(),
                estimated: 12.5,
                actual: 10,
                q_error: 1.25,
            },
            TraceEvent::JobEnd {
                job: "j1".into(),
                sim_seconds: 40.0,
                startup_seconds: 15.0,
                hdfs_read_bytes: 1,
                hdfs_write_bytes: 2,
                shuffle_bytes: 3,
                task_retries: 2,
                retry_seconds: 1.25,
                ops,
            },
            TraceEvent::JobSpan {
                job: "j1".into(),
                stage: 0,
                sim_start: 0.0,
                sim_end: 40.0,
                startup_seconds: 15.0,
            },
            TraceEvent::StageEnd { stage: 0, sim_end: 40.0 },
            TraceEvent::WorkflowEnd { label: "w".into(), sim_seconds: 40.0, succeeded: true },
        ];
        for ev in &events {
            let json = ev.to_json();
            validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
            assert!(json.contains(&format!("\"event\":\"{}\"", ev.kind())), "{json}");
        }
    }

    #[test]
    fn string_escaping_round_trips_validator() {
        let mut s = String::new();
        escape_json_into("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
        validate_json(&format!("\"{s}\"")).unwrap();
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-7",
            r#"{"a":[1,2,{"b":"c"}],"d":null}"#,
            "  [1, 2]  ",
            r#""ÿ""#,
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in
            ["", "{", "[1,]", "{\"a\"}", "tru", "1.2.3", "\"unterminated", "[1] trailing", "01x"]
        {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn validate_jsonl_reports_offending_line() {
        validate_jsonl("").unwrap();
        validate_jsonl("{\"a\":1}\n{\"b\":2}\n\n[3]\n").unwrap();
        let err = validate_jsonl("{\"a\":1}\n{broken\n{\"c\":3}\n").unwrap_err();
        assert!(err.starts_with("line 1 (event 1):"), "{err}");
        let err = validate_jsonl("{\"a\":1}\n{\"b\":2}\nnope").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn validate_jsonl_accepts_integrity_event_stream() {
        // An event log of the new integrity/recovery events must be a
        // valid JSONL document carrying the stable kind tags.
        let events = [
            TraceEvent::CorruptionDetected { job: "j".into(), site: "shuffle", task: 3 },
            TraceEvent::Refetch { job: "j".into(), site: "shuffle", task: 3 },
            TraceEvent::CorruptionDetected { job: "j".into(), site: "dfs", task: 0 },
            TraceEvent::Refetch { job: "j".into(), site: "dfs", task: 0 },
            TraceEvent::RecordSkipped { job: "j".into(), task: 1, records: 4 },
            TraceEvent::CheckpointResume { stage: 2, jobs: 1 },
        ];
        let log: String = events.iter().map(|e| e.to_json() + "\n").collect::<Vec<_>>().concat();
        validate_jsonl(&log).unwrap();
        for (ev, line) in events.iter().zip(log.lines()) {
            assert!(line.contains(&format!("\"event\":\"{}\"", ev.kind())), "{line}");
        }
        assert!(log.contains("\"event\":\"corruption_detected\""));
        assert!(log.contains("\"event\":\"record_skipped\""));
        assert!(log.contains("\"event\":\"checkpoint_resume\""));
        // A flipped byte in the log itself is caught with its line index.
        let broken = log.replace("\"event\":\"refetch\"", "\"event\":refetch\"");
        let err = validate_jsonl(&broken).unwrap_err();
        assert!(err.starts_with("line 1 (event 1):"), "{err}");
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        let sink = MemorySink::new();
        sink.event(&TraceEvent::JobStart { job: "a".into() });
        sink.event(&TraceEvent::JobStart { job: "b".into() });
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0], TraceEvent::JobStart { job: "a".into() });
        assert_eq!(sink.take().len(), 2);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn multi_sink_fans_out() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        let multi = MultiSink::new(vec![a.clone() as Arc<dyn TraceSink>, b.clone() as _]);
        multi.event(&TraceEvent::JobStart { job: "x".into() });
        multi.finish();
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join(format!("mrsim-jsonl-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.event(&TraceEvent::JobStart { job: "j\"1".into() });
        sink.event(&TraceEvent::StageEnd { stage: 1, sim_end: 2.5 });
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_sink_writes_valid_trace() {
        let path = std::env::temp_dir().join(format!("mrsim-chrome-{}.json", std::process::id()));
        let sink = ChromeTraceSink::create(&path);
        sink.event(&TraceEvent::WorkflowStart { label: "wf".into() });
        sink.event(&TraceEvent::StageStart { stage: 0, sim_start: 0.0 });
        sink.event(&TraceEvent::JobStart { job: "j1".into() });
        sink.event(&TraceEvent::TaskSpan {
            job: "j1".into(),
            phase: TaskPhase::Map,
            task: 0,
            records: 5,
            bytes: 50,
            start: 15.0,
            dur: 2.0,
        });
        sink.event(&TraceEvent::TaskRetry {
            job: "j1".into(),
            phase: TaskPhase::Map,
            task: 0,
            wasted_attempts: 1,
        });
        sink.event(&TraceEvent::NodeLoss { job: "j1".into(), node: 0, maps_lost: 1 });
        sink.event(&TraceEvent::Straggler {
            job: "j1".into(),
            phase: TaskPhase::Map,
            task: 0,
            slowdown: 4.0,
        });
        sink.event(&TraceEvent::SpeculativeTask {
            job: "j1".into(),
            phase: TaskPhase::Map,
            task: 0,
            backup_won: false,
        });
        sink.event(&TraceEvent::JobEnd {
            job: "j1".into(),
            sim_seconds: 17.0,
            startup_seconds: 15.0,
            hdfs_read_bytes: 0,
            hdfs_write_bytes: 0,
            shuffle_bytes: 0,
            task_retries: 1,
            retry_seconds: 0.5,
            ops: OpCounters::new(),
        });
        sink.event(&TraceEvent::JobSpan {
            job: "j1".into(),
            stage: 0,
            sim_start: 0.0,
            sim_end: 17.0,
            startup_seconds: 15.0,
        });
        sink.event(&TraceEvent::StageEnd { stage: 0, sim_end: 17.0 });
        sink.event(&TraceEvent::WorkflowEnd {
            label: "wf".into(),
            sim_seconds: 17.0,
            succeeded: true,
        });
        sink.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        validate_json(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"M\""));
        // Task span placed absolutely: stage base 0 + job-relative 15 s.
        assert!(text.contains("\"ts\":15000000"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn chrome_sink_writes_on_drop() {
        let path =
            std::env::temp_dir().join(format!("mrsim-chrome-drop-{}.json", std::process::id()));
        {
            let sink = ChromeTraceSink::create(&path);
            sink.event(&TraceEvent::JobStart { job: "j".into() });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        validate_json(&text).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
