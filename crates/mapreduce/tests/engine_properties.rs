//! Property-based tests of the MapReduce engine: codec roundtrips for all
//! record shapes, shuffle-grouping correctness, determinism across worker
//! counts, and counter conservation laws.

use mrsim::{
    map_fn, reduce_fn, Engine, InputBinding, JobSpec, Rec, TypedMapEmitter, TypedOutEmitter,
};
use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest};
use proptest::strategy::Strategy;

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec!['a', 'B', '0', ' ', '\t', '"', '\\', 'é', '\u{1F980}']),
        0..20,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

proptest! {
    #[test]
    fn codec_roundtrip_string(s in arb_string()) {
        prop_assert_eq!(String::from_bytes(&s.to_bytes()).unwrap(), s);
    }

    #[test]
    fn codec_roundtrip_compound(
        v in prop::collection::vec((arb_string(), 0u64..u64::MAX), 0..10)
    ) {
        let rec: Vec<(String, u64)> = v;
        let back = Vec::<(String, u64)>::from_bytes(&rec.to_bytes()).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn codec_roundtrip_nested(
        v in prop::collection::vec(prop::collection::vec(arb_string(), 0..4), 0..6)
    ) {
        let back = Vec::<Vec<String>>::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn canonical_encoding_for_grouping(a in arb_string(), b in arb_string()) {
        // Equal values encode equal; distinct values encode distinct —
        // the property shuffle grouping relies on.
        prop_assert_eq!(a == b, a.to_bytes() == b.to_bytes());
    }

    #[test]
    fn truncated_buffers_error_not_panic(s in arb_string(), cut in 0usize..8) {
        let enc = s.to_bytes();
        let cut = cut.min(enc.len());
        let truncated = &enc[..enc.len() - cut];
        // Either decodes to the original (cut == 0) or errors; never panics.
        match String::from_bytes(truncated) {
            Ok(v) => prop_assert_eq!(v, s),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    #[test]
    fn wordcount_matches_hashmap_and_is_deterministic(
        words in prop::collection::vec(prop::sample::select(vec!["a", "b", "c", "dd", "eee"]), 0..60),
        workers in 1usize..6,
        reducers in 1usize..5,
    ) {
        let mut expected: std::collections::BTreeMap<String, u64> = Default::default();
        for w in &words {
            *expected.entry(w.to_string()).or_insert(0) += 1;
        }

        let engine = Engine::unbounded().with_workers(workers);
        engine.put_records("in", words.iter().map(|w| w.to_string())).unwrap();
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            out.emit(&w, &1);
            Ok(())
        });
        let reducer = reduce_fn(
            |w: String, ones: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                out.emit(&(w, ones.iter().sum()))
            },
        );
        let spec = JobSpec::map_reduce(
            "wc",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            reducers,
            "out",
        );
        let stats = engine.run_job(&spec).unwrap();
        let got: std::collections::BTreeMap<String, u64> =
            engine.read_records::<(String, u64)>("out").unwrap().into_iter().collect();
        prop_assert_eq!(got, expected);

        // Conservation laws.
        prop_assert_eq!(stats.input_records, words.len() as u64);
        prop_assert_eq!(stats.map_output_records, stats.reduce_input_records);
        prop_assert_eq!(stats.reduce_groups, stats.output_records);
        prop_assert_eq!(stats.reduce_tasks, reducers as u64);
    }

    #[test]
    fn byte_identical_across_worker_counts(
        words in prop::collection::vec(
            prop::sample::select(vec!["a", "b", "c", "dd", "eee", "ffff"]),
            0..80,
        ),
        with_combiner in 0usize..2,
        with_faults in 0usize..2,
    ) {
        // The engine's core invariant: the same job over the same input
        // yields byte-identical output files and identical counters for
        // every worker count — with and without a combiner, and with
        // fault injection (retries must not perturb results).
        let run = |workers: usize| {
            let mut engine = Engine::unbounded().with_workers(workers);
            if with_faults == 1 {
                engine = engine.with_faults(mrsim::FaultConfig::with_probability(0.3, 7));
            }
            engine.put_records("in", words.iter().map(|w| w.to_string())).unwrap();
            let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
                out.emit(&w, &1);
                Ok(())
            });
            let reducer = reduce_fn(
                |w: String, ones: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                    out.emit(&(w, ones.iter().sum()))
                },
            );
            let mut spec = JobSpec::map_reduce(
                "det",
                vec![InputBinding { file: "in".into(), mapper }],
                reducer,
                3,
                "out",
            );
            if with_combiner == 1 {
                spec = spec.with_combiner(mrsim::combine_fn(
                    |w: String, ones: Vec<u64>, out: &mut TypedMapEmitter<'_, String, u64>| {
                        out.emit(&w, &ones.iter().sum());
                        Ok(())
                    },
                ));
            }
            let stats = engine.run_job(&spec).unwrap();
            let file = engine.hdfs().lock().get("out").unwrap();
            (format!("{stats:?}"), file.records.clone(), file.text_bytes)
        };
        let baseline = run(1);
        for workers in [4usize, 8] {
            let other = run(workers);
            prop_assert_eq!(&other.1, &baseline.1, "output bytes diverged at {} workers", workers);
            prop_assert_eq!(other.2, baseline.2);
            prop_assert_eq!(&other.0, &baseline.0, "counters diverged at {} workers", workers);
        }
    }

    #[test]
    fn partition_attribution_conserves_bytes(
        words in prop::collection::vec(
            prop::sample::select(vec!["k1", "k2", "k3", "k4", "k5"]),
            1..50,
        ),
        reducers in 1usize..6,
    ) {
        let engine = Engine::unbounded();
        engine.put_records("in", words.iter().map(|w| w.to_string())).unwrap();
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            out.emit(&w, &1);
            Ok(())
        });
        let reducer = reduce_fn(
            |w: String, ones: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                out.emit(&(w, ones.iter().sum()))
            },
        );
        let spec = JobSpec::map_reduce(
            "attr",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            reducers,
            "out",
        );
        let stats = engine.run_job(&spec).unwrap();
        prop_assert_eq!(stats.shuffle_partition_bytes.len(), reducers);
        prop_assert_eq!(
            stats.shuffle_partition_bytes.iter().sum::<u64>(),
            stats.shuffle_bytes()
        );
        prop_assert!(stats.max_partition_shuffle_bytes() <= stats.map_output_bytes);
        prop_assert!(stats.reduce_skew() >= 1.0 - 1e-9);
        prop_assert!(stats.reduce_skew() <= reducers as f64 + 1e-9);
    }

    #[test]
    fn replication_scales_write_accounting(repl in 1u32..5) {
        let engine = Engine::new(mrsim::SimHdfs::new(u64::MAX / 8, repl));
        engine.put_records("in", ["x".to_string(), "y".to_string()]).unwrap();
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            out.emit(&w, &1);
            Ok(())
        });
        let reducer = reduce_fn(|w: String, _: Vec<u64>, out: &mut TypedOutEmitter<'_, String>| {
            out.emit(&w)
        });
        let spec = JobSpec::map_reduce(
            "j",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            1,
            "out",
        );
        let stats = engine.run_job(&spec).unwrap();
        prop_assert_eq!(stats.hdfs_write_bytes, stats.output_text_bytes * u64::from(repl));
    }
}

mod fault_injection {
    use super::*;
    use mrsim::FaultConfig;

    fn wordcount(engine: &Engine) -> Result<(mrsim::JobStats, Vec<(String, u64)>), mrsim::MrError> {
        engine.put_records("in", (0..80).map(|i| format!("w{}", i % 7)))?;
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            out.emit(&w, &1);
            Ok(())
        });
        let reducer =
            reduce_fn(|w: String, ones: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                out.emit(&(w, ones.iter().sum()))
            });
        let spec = JobSpec::map_reduce(
            "wc-faults",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            4,
            "out",
        );
        let stats = engine.run_job(&spec)?;
        let mut rows = engine.read_records::<(String, u64)>("out")?;
        rows.sort();
        Ok((stats, rows))
    }

    #[test]
    fn injected_failures_do_not_change_results() {
        let clean = Engine::unbounded();
        let (clean_stats, clean_rows) = wordcount(&clean).unwrap();
        assert_eq!(clean_stats.task_retries, 0);

        let faulty = Engine::unbounded().with_faults(FaultConfig::with_probability(0.4, 11));
        let (faulty_stats, faulty_rows) = wordcount(&faulty).unwrap();
        assert!(faulty_stats.task_retries > 0, "p=0.4 should force retries");
        assert_eq!(clean_rows, faulty_rows, "retried tasks must reproduce output");
        assert_eq!(clean_stats.output_text_bytes, faulty_stats.output_text_bytes);
    }

    #[test]
    fn exhausted_attempts_fail_the_job() {
        let engine = Engine::unbounded()
            .with_faults(FaultConfig::with_probability(0.99, 3).with_max_attempts(2));
        let err = wordcount(&engine).unwrap_err();
        assert!(err.to_string().contains("consecutive attempts"), "{err}");
    }

    #[test]
    fn retries_are_deterministic() {
        // Determinism must hold whether a given seed completes or exhausts
        // its attempts, so compare the full outcome.
        let run = |seed| {
            let engine = Engine::unbounded().with_faults(FaultConfig::with_probability(0.3, seed));
            match wordcount(&engine) {
                Ok((stats, rows)) => format!("ok retries={} rows={rows:?}", stats.task_retries),
                Err(e) => format!("err {e}"),
            }
        };
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "seed {seed}");
        }
    }
}

/// The arena-backed spill path must be byte-for-byte equivalent to the
/// owned-pair shuffle it replaced. The reference model below re-implements
/// map → (combine) → partition → sort → group → reduce over plain owned
/// `(Vec<u8>, Vec<u8>)` pairs, mirroring the engine's input chunking
/// (`max(len / 32, 1024)` records per map task, independent of worker
/// count) so per-task combining sees the same record sets.
mod arena_shuffle {
    use super::*;

    /// Mapper fanout used by both the engine job and the reference model:
    /// `w → (w, 1), (w#t, 2)`.
    fn map_pairs(w: &str) -> [(String, u64); 2] {
        [(w.to_string(), 1), (format!("{w}#t"), 2)]
    }

    /// Owned-pair reference shuffle. Returns the encoded output records in
    /// partition order — what the engine's output file must contain.
    fn reference_shuffle(words: &[String], reducers: usize, with_combiner: bool) -> Vec<Vec<u8>> {
        type Pair = (Vec<u8>, Vec<u8>);
        let mut partitions: Vec<Vec<Pair>> = vec![Vec::new(); reducers];
        if !words.is_empty() {
            let target = (words.len() / 32).max(1024).min(words.len());
            for chunk in words.chunks(target) {
                let mut buckets: Vec<Vec<Pair>> = vec![Vec::new(); reducers];
                for w in chunk {
                    for (k, v) in map_pairs(w) {
                        let kb = k.to_bytes();
                        let p = mrsim::default_partition(&kb, reducers);
                        buckets[p].push((kb, v.to_bytes()));
                    }
                }
                if with_combiner {
                    let mut combined: Vec<Vec<Pair>> = vec![Vec::new(); reducers];
                    for bucket in &mut buckets {
                        bucket.sort();
                        let mut i = 0;
                        while i < bucket.len() {
                            let mut j = i + 1;
                            while j < bucket.len() && bucket[j].0 == bucket[i].0 {
                                j += 1;
                            }
                            let sum: u64 =
                                bucket[i..j].iter().map(|(_, v)| u64::from_bytes(v).unwrap()).sum();
                            let p = mrsim::default_partition(&bucket[i].0, reducers);
                            combined[p].push((bucket[i].0.clone(), sum.to_bytes()));
                            i = j;
                        }
                    }
                    buckets = combined;
                }
                for (p, bucket) in buckets.into_iter().enumerate() {
                    partitions[p].extend(bucket);
                }
            }
        }
        let mut out = Vec::new();
        for part in &mut partitions {
            part.sort();
            for (kb, vb) in part.iter() {
                let rec = (String::from_bytes(kb).unwrap(), u64::from_bytes(vb).unwrap());
                out.push(rec.to_bytes());
            }
        }
        out
    }

    /// Run the same job through the real engine and return the raw output
    /// file records. The identity reducer re-emits every `(key, value)`
    /// pair, so the output file *is* the sorted per-partition shuffle
    /// stream, verbatim.
    fn engine_shuffle(
        words: &[String],
        workers: usize,
        reducers: usize,
        with_combiner: bool,
    ) -> Vec<Vec<u8>> {
        let engine = Engine::unbounded().with_workers(workers);
        engine.put_records("in", words.to_vec()).unwrap();
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            for (k, v) in map_pairs(&w) {
                out.emit(&k, &v);
            }
            Ok(())
        });
        let reducer =
            reduce_fn(|w: String, vals: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                for v in vals {
                    out.emit(&(w.clone(), v))?;
                }
                Ok(())
            });
        let mut spec = JobSpec::map_reduce(
            "arena-vs-reference",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            reducers,
            "out",
        );
        if with_combiner {
            spec = spec.with_combiner(mrsim::combine_fn(
                |w: String, vals: Vec<u64>, out: &mut TypedMapEmitter<'_, String, u64>| {
                    out.emit(&w, &vals.iter().sum::<u64>());
                    Ok(())
                },
            ));
        }
        engine.run_job(&spec).unwrap();
        let records = engine.hdfs().lock().get("out").unwrap().records.clone();
        records
    }

    /// Vocabulary rich in >8-byte shared prefixes so the prefix-cache
    /// tie-break (full-key memcmp) is exercised, not just the fast path.
    fn arb_words() -> impl Strategy<Value = Vec<String>> {
        prop::collection::vec(
            prop::sample::select(vec![
                "sharedprefix-a",
                "sharedprefix-b",
                "sharedprefix",
                "sharedprefix-",
                "short",
                "x",
                "",
            ]),
            0..80,
        )
        .prop_map(|ws| ws.into_iter().map(String::from).collect())
    }

    proptest! {
        #[test]
        fn arena_matches_owned_pair_reference(
            words in arb_words(),
            reducers in 1usize..5,
            with_combiner in 0usize..2,
        ) {
            let with_combiner = with_combiner == 1;
            let expected = reference_shuffle(&words, reducers, with_combiner);
            for workers in [1usize, 4, 8] {
                let got = engine_shuffle(&words, workers, reducers, with_combiner);
                prop_assert_eq!(
                    &got,
                    &expected,
                    "workers={} reducers={} combiner={}",
                    workers,
                    reducers,
                    with_combiner
                );
            }
        }
    }

    /// Same job, same input, opposite [`mrsim::SortStrategy`]: output
    /// files and counters must be byte-identical. The only permitted
    /// divergence is the `sort_strategy` tag itself, which the comparison
    /// normalizes away before asserting.
    fn engine_shuffle_with_strategy(
        words: &[String],
        workers: usize,
        reducers: usize,
        with_combiner: bool,
        strategy: mrsim::SortStrategy,
    ) -> (String, Vec<Vec<u8>>, u64) {
        let engine = Engine::unbounded().with_workers(workers).with_sort_strategy(strategy);
        engine.put_records("in", words.to_vec()).unwrap();
        let mapper = map_fn(|w: String, out: &mut TypedMapEmitter<'_, String, u64>| {
            for (k, v) in map_pairs(&w) {
                out.emit(&k, &v);
            }
            Ok(())
        });
        let reducer =
            reduce_fn(|w: String, vals: Vec<u64>, out: &mut TypedOutEmitter<'_, (String, u64)>| {
                for v in vals {
                    out.emit(&(w.clone(), v))?;
                }
                Ok(())
            });
        let mut spec = JobSpec::map_reduce(
            "strategy-diff",
            vec![InputBinding { file: "in".into(), mapper }],
            reducer,
            reducers,
            "out",
        );
        if with_combiner {
            spec = spec.with_combiner(mrsim::combine_fn(
                |w: String, vals: Vec<u64>, out: &mut TypedMapEmitter<'_, String, u64>| {
                    out.emit(&w, &vals.iter().sum::<u64>());
                    Ok(())
                },
            ));
        }
        let stats = engine.run_job(&spec).unwrap();
        let file = engine.hdfs().lock().get("out").unwrap();
        let normalized = format!("{stats:?}")
            .replace("sort_strategy: \"radix\"", "sort_strategy: \"<any>\"")
            .replace("sort_strategy: \"comparison\"", "sort_strategy: \"<any>\"");
        (normalized, file.records.clone(), file.text_bytes)
    }

    proptest! {
        #[test]
        fn radix_equals_comparison_end_to_end(
            words in arb_words(),
            reducers in 1usize..5,
            with_combiner in 0usize..2,
        ) {
            let with_combiner = with_combiner == 1;
            for workers in [1usize, 4, 8] {
                let radix = engine_shuffle_with_strategy(
                    &words, workers, reducers, with_combiner, mrsim::SortStrategy::Radix,
                );
                let cmp = engine_shuffle_with_strategy(
                    &words, workers, reducers, with_combiner, mrsim::SortStrategy::Comparison,
                );
                prop_assert_eq!(
                    &radix.1, &cmp.1,
                    "output diverged: workers={} reducers={} combiner={}",
                    workers, reducers, with_combiner
                );
                prop_assert_eq!(radix.2, cmp.2);
                prop_assert_eq!(
                    &radix.0, &cmp.0,
                    "counters diverged: workers={} reducers={} combiner={}",
                    workers, reducers, with_combiner
                );
            }
        }
    }

    #[test]
    fn radix_equals_comparison_across_multiple_map_tasks() {
        // Large enough for several 1 024-record map tasks, so the
        // sorted-run merge at reduce genuinely sees many runs per
        // partition rather than one trivially pre-sorted arena.
        let words: Vec<String> = (0..6000)
            .map(|i| match i % 5 {
                0 => format!("sharedprefix-{}", i % 23),
                1 => "sharedprefix".to_string(),
                2 => format!("k{}", i % 11),
                3 => String::new(),
                _ => format!("sharedprefix-{}#x", i % 7),
            })
            .collect();
        for with_combiner in [false, true] {
            for workers in [1usize, 4, 8] {
                let radix = engine_shuffle_with_strategy(
                    &words,
                    workers,
                    4,
                    with_combiner,
                    mrsim::SortStrategy::Radix,
                );
                let cmp = engine_shuffle_with_strategy(
                    &words,
                    workers,
                    4,
                    with_combiner,
                    mrsim::SortStrategy::Comparison,
                );
                assert_eq!(radix.1, cmp.1, "workers={workers} combiner={with_combiner}");
                assert_eq!(radix.2, cmp.2);
                assert_eq!(radix.0, cmp.0, "workers={workers} combiner={with_combiner}");
            }
        }
    }

    #[test]
    fn arena_matches_reference_across_multiple_map_tasks() {
        // 6 000 input records split into six 1 024-record map tasks
        // (regardless of worker count), so per-task combining and
        // multi-bucket absorption are genuinely exercised (small proptest
        // inputs fit in one chunk).
        let words: Vec<String> = (0..6000)
            .map(|i| match i % 5 {
                0 => format!("sharedprefix-{}", i % 23),
                1 => "sharedprefix".to_string(),
                2 => format!("k{}", i % 11),
                3 => String::new(),
                _ => format!("sharedprefix-{}#x", i % 7),
            })
            .collect();
        for with_combiner in [false, true] {
            let expected = reference_shuffle(&words, 4, with_combiner);
            for workers in [1usize, 4, 8] {
                let got = engine_shuffle(&words, workers, 4, with_combiner);
                assert_eq!(got, expected, "workers={workers} combiner={with_combiner}");
            }
        }
    }
}
