//! Integration tests for the structured tracing subsystem:
//!
//! * fault-injection observability — injected retries appear both in
//!   `JobStats::task_retries` and as `TaskRetry` trace events, across
//!   worker counts {1, 4, 8};
//! * golden-trace determinism — the same workflow traced twice (and across
//!   worker counts) yields identical event sequences modulo task
//!   interleaving, enforced by a canonical sort;
//! * timeline reconstruction — per stage, `max(startup) + Σ work` over the
//!   `JobSpan` events reproduces `WorkflowStats::sim_seconds` to 1e-6;
//! * file sinks — a traced workflow produces a parseable JSONL event log
//!   and a parseable Chrome trace.

use mrsim::trace::validate_json;
use mrsim::{
    map_fn, reduce_fn, Engine, FaultConfig, InputBinding, JobSpec, MemorySink, TaskPhase,
    TraceEvent, TraceSink, TypedMapEmitter, TypedOutEmitter, Workflow,
};
use std::sync::Arc;

/// A word-count-shaped job from `input` to `output`.
fn wc_job(name: &str, input: &str, output: &str, reduce_tasks: usize) -> JobSpec {
    let mapper = map_fn(|word: String, out: &mut TypedMapEmitter<'_, String, u64>| {
        out.emit(&word, &1);
        Ok(())
    });
    let reducer =
        reduce_fn(|key: String, values: Vec<u64>, out: &mut TypedOutEmitter<'_, String>| {
            out.emit(&format!("{key}:{}", values.iter().sum::<u64>()))
        });
    JobSpec::map_reduce(
        name,
        vec![InputBinding { file: input.into(), mapper }],
        reducer,
        reduce_tasks,
        output,
    )
}

fn put_input(engine: &Engine, file: &str, n: usize) {
    engine.put_records(file, (0..n).map(|i| format!("word{}", i % 17))).unwrap();
}

/// Canonical form for cross-worker-count comparison: serialized events,
/// sorted. (With one driver thread the raw order is already deterministic;
/// sorting makes the comparison robust to any task interleaving.)
fn canonical(events: &[TraceEvent]) -> Vec<String> {
    let mut v: Vec<String> = events.iter().map(TraceEvent::to_json).collect();
    v.sort();
    v
}

fn run_faulted(workers: usize, seed: u64) -> Option<(mrsim::JobStats, Vec<TraceEvent>)> {
    let sink = MemorySink::new();
    let engine = Engine::unbounded()
        .with_workers(workers)
        .with_faults(FaultConfig::with_probability(0.4, seed))
        .with_trace(sink.clone() as Arc<dyn TraceSink>);
    put_input(&engine, "in", 600);
    // With p=0.4 a task can exhaust its 4 attempts and fail the job; the
    // caller skips such seeds.
    let stats = engine.run_job(&wc_job("faulted", "in", "out", 8)).ok()?;
    Some((stats, sink.take()))
}

#[test]
fn fault_retries_appear_in_stats_and_trace_across_worker_counts() {
    // Injection is deterministic per seed; pick the first seed whose job
    // survives and retries at least once (p=0.4 over 9 tasks: most do).
    let seed = (0..100)
        .find(|&s| run_faulted(1, s).is_some_and(|(stats, _)| stats.task_retries > 0))
        .expect("some seed must produce retries");
    let (base_stats, base_events) = run_faulted(1, seed).unwrap();
    assert!(base_stats.task_retries > 0);

    for workers in [1usize, 4, 8] {
        let (stats, events) = run_faulted(workers, seed).unwrap();
        // Retries are a property of the (job, task, seed) identity, not of
        // the thread schedule.
        assert_eq!(stats.task_retries, base_stats.task_retries, "workers={workers}");

        let retry_events: Vec<&TraceEvent> =
            events.iter().filter(|e| matches!(e, TraceEvent::TaskRetry { .. })).collect();
        assert!(!retry_events.is_empty(), "workers={workers}");
        let wasted: u64 = retry_events
            .iter()
            .map(|e| match e {
                TraceEvent::TaskRetry { wasted_attempts, .. } => *wasted_attempts,
                _ => unreachable!(),
            })
            .sum();
        assert_eq!(wasted, stats.task_retries, "workers={workers}");
        // Both phases carry valid retry metadata.
        for e in &retry_events {
            if let TraceEvent::TaskRetry { job, phase, task, .. } = e {
                assert_eq!(job, "faulted");
                match phase {
                    TaskPhase::Map => assert!(*task < stats.map_tasks),
                    TaskPhase::Reduce => assert!(*task < stats.reduce_tasks),
                }
            }
        }
        assert_eq!(canonical(&events), canonical(&base_events), "workers={workers}");
    }
}

/// A two-stage workflow: a concurrent stage of two jobs over the same
/// input, then a join-shaped second stage reading both outputs.
fn run_traced_workflow(workers: usize) -> (mrsim::WorkflowStats, Vec<TraceEvent>) {
    let sink = MemorySink::new();
    let engine =
        Engine::unbounded().with_workers(workers).with_trace(sink.clone() as Arc<dyn TraceSink>);
    put_input(&engine, "in", 800);
    let mut wf = Workflow::new(&engine, "golden");
    wf.run_stage(vec![wc_job("j-a", "in", "a", 4), wc_job("j-b", "in", "b", 3)]).unwrap();
    let merge = {
        let mapper = map_fn(|line: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&line, &line);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)
            });
        JobSpec::map_reduce(
            "j-merge",
            vec![
                InputBinding { file: "a".into(), mapper: mapper.clone() },
                InputBinding { file: "b".into(), mapper },
            ],
            reducer,
            2,
            "c",
        )
    };
    wf.run_job(merge).unwrap();
    let stats = wf.finish(&["c"]);
    (stats, sink.take())
}

#[test]
fn golden_trace_is_deterministic() {
    // Same workflow, same worker count: byte-identical event *sequence*.
    let (stats1, events1) = run_traced_workflow(4);
    let (stats2, events2) = run_traced_workflow(4);
    assert_eq!(format!("{stats1:?}"), format!("{stats2:?}"));
    assert_eq!(
        events1.iter().map(TraceEvent::to_json).collect::<Vec<_>>(),
        events2.iter().map(TraceEvent::to_json).collect::<Vec<_>>()
    );

    // Across worker counts: identical modulo task interleaving (canonical
    // sort before comparison).
    let base = canonical(&events1);
    for workers in [1usize, 8] {
        let (stats, events) = run_traced_workflow(workers);
        assert_eq!(format!("{stats:?}"), format!("{stats1:?}"), "workers={workers}");
        assert_eq!(canonical(&events), base, "workers={workers}");
    }

    // The event stream covers the whole model.
    let kinds: std::collections::BTreeSet<&str> = events1.iter().map(TraceEvent::kind).collect();
    for expected in [
        "workflow_start",
        "stage_start",
        "job_start",
        "task_span",
        "shuffle_partition",
        "job_end",
        "job_span",
        "stage_end",
        "workflow_end",
    ] {
        assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
    }
}

#[test]
fn job_spans_reconstruct_workflow_sim_seconds() {
    let (stats, events) = run_traced_workflow(4);
    assert!(stats.sim_seconds > 0.0);

    // Group JobSpan events by stage.
    let mut stages: std::collections::BTreeMap<u64, Vec<(f64, f64, f64)>> = Default::default();
    for e in &events {
        if let TraceEvent::JobSpan { stage, sim_start, sim_end, startup_seconds, .. } = e {
            stages.entry(*stage).or_default().push((*sim_start, *sim_end, *startup_seconds));
        }
    }
    assert_eq!(stages.len(), 2, "two stages expected");

    // Per stage: makespan = max startup + Σ (span − startup); stages chain.
    let mut total = 0.0f64;
    for (stage, spans) in &stages {
        let mut max_startup = 0.0f64;
        let mut sum_work = 0.0f64;
        for &(start, end, startup) in spans {
            assert!(
                (start - total).abs() < 1e-9,
                "stage {stage} span starts at {start}, stage starts at {total}"
            );
            max_startup = max_startup.max(startup);
            sum_work += end - start - startup;
        }
        total += max_startup + sum_work;
    }
    assert!(
        (total - stats.sim_seconds).abs() < 1e-6,
        "reconstructed {total} vs sim_seconds {}",
        stats.sim_seconds
    );

    // StageEnd events agree with the running total.
    let last_stage_end = events
        .iter()
        .rev()
        .find_map(|e| match e {
            TraceEvent::StageEnd { sim_end, .. } => Some(*sim_end),
            _ => None,
        })
        .unwrap();
    assert!((last_stage_end - stats.sim_seconds).abs() < 1e-6);

    // Per job, the task spans partition the job's work time.
    for e in &events {
        if let TraceEvent::JobEnd { job, sim_seconds, startup_seconds, .. } = e {
            let work = sim_seconds - startup_seconds;
            let span_sum: f64 = events
                .iter()
                .filter_map(|t| match t {
                    TraceEvent::TaskSpan { job: j, dur, .. } if j == job => Some(*dur),
                    _ => None,
                })
                .sum();
            assert!(
                (span_sum - work).abs() < 1e-6,
                "job {job}: task spans sum to {span_sum}, work is {work}"
            );
        }
    }
}

#[test]
fn file_sinks_emit_parseable_json() {
    let dir = std::env::temp_dir();
    let chrome_path = dir.join(format!("mrsim-e2e-{}.trace.json", std::process::id()));
    let jsonl_path = dir.join(format!("mrsim-e2e-{}.trace.jsonl", std::process::id()));
    {
        let sink: Arc<dyn TraceSink> = Arc::new(mrsim::MultiSink::new(vec![
            Arc::new(mrsim::JsonlSink::create(&jsonl_path).unwrap()),
            Arc::new(mrsim::ChromeTraceSink::create(&chrome_path)),
        ]));
        let engine = Engine::unbounded().with_workers(2).with_trace(sink.clone());
        put_input(&engine, "in", 300);
        let mut wf = Workflow::new(&engine, "e2e");
        wf.run_job(wc_job("j1", "in", "mid", 3)).unwrap();
        wf.run_job(wc_job("j2", "mid", "out", 2)).unwrap();
        wf.finish(&["out"]);
        sink.finish();
    }

    let jsonl = std::fs::read_to_string(&jsonl_path).unwrap();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines.len() > 10, "expected a rich event log, got {} lines", lines.len());
    for line in &lines {
        validate_json(line).unwrap_or_else(|e| panic!("{line}: {e}"));
    }
    assert!(jsonl.contains("\"event\":\"workflow_end\""));

    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    validate_json(&chrome).unwrap_or_else(|e| panic!("chrome trace invalid: {e}"));
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\""));

    let _ = std::fs::remove_file(&jsonl_path);
    let _ = std::fs::remove_file(&chrome_path);
}
