//! Equivalence of the ID-native shuffle with the lexical path: the same
//! grouping job run over LEB128-varint dictionary ids must decode to
//! byte-identical output records across worker counts {1, 4, 8}, with
//! and without a combiner. The two paths partition by different key
//! bytes, so equality is checked on the canonically sorted decoded
//! records; within the ID path, output files must be byte-identical
//! across worker counts.

use mrsim::{
    combine_fn, map_fn, map_fn_ctx, reduce_fn, reduce_fn_ctx, Engine, InputBinding, JobSpec, Rec,
    TypedMapEmitter, TypedOutEmitter, VarId,
};
use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest};
use proptest::strategy::Strategy;
use rdf_model::atom::atom;
use rdf_model::Dictionary;
use std::sync::Arc;

const TOKENS: [&str; 7] =
    ["<g1>", "<label>", "\"retinoid receptor\"", "<go:0005634>", "\"x\"", "<p>", "<g2>"];

fn arb_pairs() -> impl Strategy<Value = Vec<(String, String)>> {
    let tok = || prop::sample::select(TOKENS.to_vec()).prop_map(String::from);
    prop::collection::vec((tok(), tok()), 0..80)
}

/// Lexical reference: group `(a, b)` pairs by `a`, re-emit every pair.
fn run_lexical(
    pairs: &[(String, String)],
    workers: usize,
    with_combiner: bool,
) -> (mrsim::JobStats, Vec<Vec<u8>>) {
    let engine = Engine::unbounded().with_workers(workers);
    engine.put_records("in", pairs.to_vec()).unwrap();
    let mapper =
        map_fn(|(a, b): (String, String), out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&a, &b);
            Ok(())
        });
    let reducer =
        reduce_fn(|a: String, bs: Vec<String>, out: &mut TypedOutEmitter<'_, (String, String)>| {
            for b in bs {
                out.emit(&(a.clone(), b))?;
            }
            Ok(())
        });
    let mut spec = JobSpec::map_reduce(
        "lex",
        vec![InputBinding { file: "in".into(), mapper }],
        reducer,
        3,
        "out",
    );
    if with_combiner {
        spec = spec.with_combiner(combine_fn(
            |a: String, bs: Vec<String>, out: &mut TypedMapEmitter<'_, String, String>| {
                for b in bs {
                    out.emit(&a, &b);
                }
                Ok(())
            },
        ));
    }
    let stats = engine.run_job(&spec).unwrap();
    let records = engine.hdfs().lock().get("out").unwrap().records.clone();
    (stats, records)
}

/// ID-native path: the same job over `(VarId, VarId)` records, resolving
/// ids at the output boundary and restoring the lexical value order.
fn run_ids(
    pairs: &[(String, String)],
    dict: &Dictionary,
    workers: usize,
    with_combiner: bool,
) -> (mrsim::JobStats, Vec<Vec<u8>>) {
    let engine = Engine::unbounded().with_workers(workers).with_dict(Arc::new(dict.clone()));
    let ids: Vec<(VarId, VarId)> = pairs
        .iter()
        .map(|(a, b)| (VarId(dict.get(&atom(a)).unwrap()), VarId(dict.get(&atom(b)).unwrap())))
        .collect();
    engine.put_records("in", ids).unwrap();
    let mapper = map_fn_ctx(
        |_ctx: &mrsim::TaskContext,
         (a, b): (VarId, VarId),
         out: &mut TypedMapEmitter<'_, VarId, VarId>| {
            out.emit(&a, &b);
            Ok(())
        },
    );
    let reducer = reduce_fn_ctx(
        |ctx: &mrsim::TaskContext,
         a: VarId,
         bs: Vec<VarId>,
         out: &mut TypedOutEmitter<'_, (String, String)>| {
            let a = ctx.resolve_atom(a.0)?.to_string();
            let mut toks = bs
                .iter()
                .map(|b| Ok(ctx.resolve_atom(b.0)?.to_string()))
                .collect::<Result<Vec<String>, mrsim::MrError>>()?;
            // The lexical reducer sees values in encoded-token order (the
            // shuffle sorts by value bytes); restore it after resolution.
            toks.sort_by_cached_key(Rec::to_bytes);
            for b in toks {
                out.emit(&(a.clone(), b))?;
            }
            Ok(())
        },
    );
    let mut spec = JobSpec::map_reduce(
        "ids",
        vec![InputBinding { file: "in".into(), mapper }],
        reducer,
        3,
        "out",
    );
    if with_combiner {
        spec = spec.with_combiner(combine_fn(
            |a: VarId, bs: Vec<VarId>, out: &mut TypedMapEmitter<'_, VarId, VarId>| {
                for b in bs {
                    out.emit(&a, &b);
                }
                Ok(())
            },
        ));
    }
    let stats = engine.run_job(&spec).unwrap();
    let records = engine.hdfs().lock().get("out").unwrap().records.clone();
    (stats, records)
}

fn sorted(mut records: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    records.sort();
    records
}

proptest! {
    #[test]
    fn id_shuffle_decodes_byte_identical_to_lexical(
        pairs in arb_pairs(),
        with_combiner in 0usize..2,
    ) {
        let with_combiner = with_combiner == 1;
        let mut dict = Dictionary::new();
        for t in TOKENS {
            dict.encode(&atom(t));
        }
        let (_, lex_base) = run_lexical(&pairs, 1, with_combiner);
        let (_, id_base) = run_ids(&pairs, &dict, 1, with_combiner);
        // Same decoded records, canonically sorted (the two paths
        // partition by different key bytes, so file order differs).
        prop_assert_eq!(sorted(lex_base.clone()), sorted(id_base.clone()));

        for workers in [4usize, 8] {
            let (lex_stats, lex) = run_lexical(&pairs, workers, with_combiner);
            let (id_stats, id) = run_ids(&pairs, &dict, workers, with_combiner);
            // Worker count must not perturb either path's output file.
            prop_assert_eq!(&lex, &lex_base, "lexical diverged at {} workers", workers);
            prop_assert_eq!(&id, &id_base, "id diverged at {} workers", workers);
            prop_assert_eq!(lex_stats.reduce_groups, id_stats.reduce_groups);
            prop_assert_eq!(lex_stats.output_records, id_stats.output_records);
            if !pairs.is_empty() {
                // Varint ids beat length-prefixed tokens on the wire.
                prop_assert!(
                    id_stats.shuffle_wire_bytes() < lex_stats.shuffle_wire_bytes(),
                    "id wire {} >= lexical wire {}",
                    id_stats.shuffle_wire_bytes(),
                    lex_stats.shuffle_wire_bytes()
                );
            }
        }
    }
}

/// Large-input variant: enough records for multiple map tasks per worker,
/// so per-task combining and bucket absorption run on the ID path too.
#[test]
fn id_equivalence_across_multiple_map_tasks() {
    let pairs: Vec<(String, String)> = (0..6000)
        .map(|i| {
            (TOKENS[i % TOKENS.len()].to_string(), TOKENS[(i * 3 + 1) % TOKENS.len()].to_string())
        })
        .collect();
    let mut dict = Dictionary::new();
    for t in TOKENS {
        dict.encode(&atom(t));
    }
    for with_combiner in [false, true] {
        let (_, lex) = run_lexical(&pairs, 1, with_combiner);
        for workers in [1usize, 4, 8] {
            let (_, id) = run_ids(&pairs, &dict, workers, with_combiner);
            assert_eq!(
                sorted(lex.clone()),
                sorted(id),
                "workers={workers} combiner={with_combiner}"
            );
        }
    }
}
