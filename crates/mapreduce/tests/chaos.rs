//! Deterministic chaos campaign over the fault model.
//!
//! Sweeps fault regimes {none, task failures, node loss, stragglers,
//! combined, corruption, corruption+combined} × worker counts {1, 4, 8}
//! over a two-stage workflow and asserts the engine's core contract under
//! chaos:
//!
//! * the final output is **bit-identical** to the fault-free run — faults
//!   (including injected data corruption, with checksum verification on)
//!   cost simulated time, never correctness;
//! * every injected regime surfaces in the fault counters and is charged
//!   real simulated time (`retry_seconds` > 0 or straggler tail > 0, and
//!   `sim_seconds` strictly above the fault-free makespan);
//! * trace timelines stay consistent: per stage, `max(startup) + Σ work`
//!   over the `JobSpan` events (plus recovery backoff) reproduces the
//!   workflow makespan;
//! * a task exhausting its attempt budget yields a *failed workflow* (a
//!   populated `failure`, a `workflow_end { succeeded: false }` event) —
//!   never a panic — identically across worker counts.

use mrsim::trace::TraceEvent;
use mrsim::{
    combine_fn, map_fn, reduce_fn, Engine, FaultConfig, InputBinding, JobSpec, MemorySink,
    SortStrategy, TraceSink, TypedMapEmitter, TypedOutEmitter, Workflow, WorkflowStats,
};
use std::sync::Arc;

/// A word-count-shaped job from `input` to `output`.
fn wc_job(name: &str, input: &str, output: &str, reduce_tasks: usize) -> JobSpec {
    let mapper = map_fn(|word: String, out: &mut TypedMapEmitter<'_, String, u64>| {
        out.emit(&word, &1);
        Ok(())
    });
    let reducer =
        reduce_fn(|key: String, values: Vec<u64>, out: &mut TypedOutEmitter<'_, String>| {
            out.emit(&format!("{key}:{}", values.iter().sum::<u64>()))
        });
    JobSpec::map_reduce(
        name,
        vec![InputBinding { file: input.into(), mapper }],
        reducer,
        reduce_tasks,
        output,
    )
}

/// The chaos regimes the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Regime {
    None,
    TaskFail,
    NodeLoss,
    Stragglers,
    Combined,
    Corruption,
    CorruptionCombined,
}

const REGIMES: [Regime; 7] = [
    Regime::None,
    Regime::TaskFail,
    Regime::NodeLoss,
    Regime::Stragglers,
    Regime::Combined,
    Regime::Corruption,
    Regime::CorruptionCombined,
];

fn faults_for(regime: Regime, seed: u64) -> FaultConfig {
    match regime {
        Regime::None => FaultConfig::none(),
        Regime::TaskFail => FaultConfig::with_probability(0.3, seed),
        Regime::NodeLoss => FaultConfig::with_probability(0.0, seed).with_node_loss(0.6),
        Regime::Stragglers => {
            FaultConfig::with_probability(0.0, seed).with_stragglers(0.3, 6.0).with_speculation(2.0)
        }
        Regime::Combined => FaultConfig::with_probability(0.2, seed)
            .with_node_loss(0.5)
            .with_stragglers(0.3, 6.0)
            .with_speculation(2.0),
        Regime::Corruption => FaultConfig::with_probability(0.0, seed).with_corruption(0.5),
        Regime::CorruptionCombined => FaultConfig::with_probability(0.2, seed)
            .with_node_loss(0.5)
            .with_stragglers(0.3, 6.0)
            .with_speculation(2.0)
            .with_corruption(0.4),
    }
}

/// One chaos run's observables: workflow stats, trace, and the final
/// output's raw record bytes.
type ChaosRun = (WorkflowStats, Vec<TraceEvent>, Vec<Vec<u8>>);

/// Run the campaign workflow (a concurrent stage of two word counts, then
/// a merge of both outputs) under one regime.
fn run_chaos(regime: Regime, seed: u64, workers: usize) -> Result<ChaosRun, mrsim::MrError> {
    run_chaos_with(regime, seed, workers, true)
}

/// [`run_chaos`] with an explicit checksum-verification switch — `false`
/// only for the controlled demonstration that the checksums are
/// load-bearing.
fn run_chaos_with(
    regime: Regime,
    seed: u64,
    workers: usize,
    verify: bool,
) -> Result<ChaosRun, mrsim::MrError> {
    run_chaos_full(regime, seed, workers, verify, SortStrategy::default())
}

/// [`run_chaos_with`] with an explicit [`SortStrategy`] — the hook the
/// strategy-invariance regime below uses to replay the campaign under the
/// comparison sort.
fn run_chaos_full(
    regime: Regime,
    seed: u64,
    workers: usize,
    verify: bool,
    strategy: SortStrategy,
) -> Result<ChaosRun, mrsim::MrError> {
    let sink = MemorySink::new();
    let engine = Engine::unbounded()
        .with_workers(workers)
        .with_faults(faults_for(regime, seed))
        .with_verification(verify)
        .with_sort_strategy(strategy)
        .with_trace(sink.clone() as Arc<dyn TraceSink>);
    engine.put_records("in", (0..800).map(|i| format!("word{}", i % 17))).unwrap();
    let mut wf = Workflow::new(&engine, format!("chaos-{regime:?}"));
    wf.run_stage(vec![wc_job("j-a", "in", "a", 4), wc_job("j-b", "in", "b", 3)])?;
    let merge = {
        let mapper = map_fn(|line: String, out: &mut TypedMapEmitter<'_, String, String>| {
            out.emit(&line, &line);
            Ok(())
        });
        let reducer =
            reduce_fn(|k: String, _v: Vec<String>, out: &mut TypedOutEmitter<'_, String>| {
                out.emit(&k)
            });
        JobSpec::map_reduce(
            "j-merge",
            vec![
                InputBinding { file: "a".into(), mapper: mapper.clone() },
                InputBinding { file: "b".into(), mapper },
            ],
            reducer,
            2,
            "c",
        )
    };
    wf.run_job(merge)?;
    let stats = wf.finish(&["c"]);
    let out = engine.hdfs().lock().get("c").unwrap().records.clone();
    Ok((stats, sink.take(), out))
}

/// Per stage, `max(startup) + Σ (span − startup)` over the JobSpan events,
/// plus any recovery backoff, must reproduce the workflow makespan.
fn reconstruct_makespan(events: &[TraceEvent], backoff_seconds: f64) -> f64 {
    let mut stages: std::collections::BTreeMap<u64, (f64, f64)> = Default::default();
    for e in events {
        if let TraceEvent::JobSpan { stage, sim_start, sim_end, startup_seconds, .. } = e {
            let entry = stages.entry(*stage).or_insert((0.0, 0.0));
            entry.0 = entry.0.max(*startup_seconds);
            entry.1 += sim_end - sim_start - startup_seconds;
        }
    }
    stages.values().map(|&(startup, work)| startup + work).sum::<f64>() + backoff_seconds
}

fn canonical(events: &[TraceEvent]) -> Vec<String> {
    let mut v: Vec<String> = events.iter().map(TraceEvent::to_json).collect();
    v.sort();
    v
}

/// Find a seed where every faulted regime (a) completes without exhausting
/// any task's attempt budget and (b) actually triggers its fault kind.
fn campaign_seed() -> u64 {
    (0..200)
        .find(|&seed| {
            REGIMES.iter().all(|&regime| match run_chaos(regime, seed, 1) {
                Err(_) => false,
                Ok((stats, ..)) => match regime {
                    Regime::None => true,
                    Regime::TaskFail => stats.total_task_retries() > 0,
                    Regime::NodeLoss => stats.total_node_losses() > 0,
                    Regime::Stragglers => stats.total_speculative_tasks() > 0,
                    Regime::Combined => {
                        stats.total_task_retries() > 0 && stats.total_node_losses() > 0
                    }
                    Regime::Corruption => stats.total_corruptions_detected() > 0,
                    Regime::CorruptionCombined => {
                        stats.total_corruptions_detected() > 0 && stats.total_task_retries() > 0
                    }
                },
            })
        })
        .expect("some seed under 200 must trigger every regime without exhaustion")
}

#[test]
fn chaos_campaign_output_is_bit_identical_across_regimes_and_workers() {
    let seed = campaign_seed();
    let (clean_stats, _, clean_out) = run_chaos(Regime::None, seed, 1).unwrap();
    assert!(clean_stats.succeeded);
    assert!(!clean_out.is_empty());

    for regime in REGIMES {
        let (base_stats, base_events, _) = run_chaos(regime, seed, 1).unwrap();
        for workers in [1usize, 4, 8] {
            let (stats, events, out) = run_chaos(regime, seed, workers).unwrap();
            // Correctness: chaos never changes a byte of output.
            assert_eq!(out, clean_out, "{regime:?} workers={workers}");
            // Fault decisions are worker-invariant.
            assert_eq!(
                stats.total_task_retries(),
                base_stats.total_task_retries(),
                "{regime:?} workers={workers}"
            );
            assert_eq!(canonical(&events), canonical(&base_events), "{regime:?} w={workers}");
            // Cost: faults are charged simulated time.
            if regime == Regime::None {
                assert_eq!(stats.total_retry_seconds(), 0.0);
            } else {
                assert!(
                    stats.sim_seconds > clean_stats.sim_seconds,
                    "{regime:?} workers={workers}: faults must slow the simulated clock \
                     ({} vs clean {})",
                    stats.sim_seconds,
                    clean_stats.sim_seconds
                );
            }
            if matches!(
                regime,
                Regime::TaskFail
                    | Regime::NodeLoss
                    | Regime::Combined
                    | Regime::Corruption
                    | Regime::CorruptionCombined
            ) {
                assert!(stats.total_retry_seconds() > 0.0, "{regime:?} workers={workers}");
            }
            // Trace timeline stays consistent under chaos.
            let rebuilt = reconstruct_makespan(&events, stats.backoff_seconds);
            assert!(
                (rebuilt - stats.sim_seconds).abs() < 1e-6,
                "{regime:?} workers={workers}: reconstructed {rebuilt} vs {}",
                stats.sim_seconds
            );
        }
    }
}

#[test]
fn chaos_regimes_emit_their_trace_events() {
    let seed = campaign_seed();
    let kinds = |regime| {
        let (_, events, _) = run_chaos(regime, seed, 4).unwrap();
        events.iter().map(TraceEvent::kind).collect::<std::collections::BTreeSet<_>>()
    };
    assert!(kinds(Regime::TaskFail).contains("task_retry"));
    assert!(kinds(Regime::NodeLoss).contains("node_loss"));
    let straggler_kinds = kinds(Regime::Stragglers);
    assert!(straggler_kinds.contains("straggler"));
    assert!(straggler_kinds.contains("speculative_task"));
    let corruption_kinds = kinds(Regime::Corruption);
    assert!(corruption_kinds.contains("corruption_detected"));
    assert!(corruption_kinds.contains("refetch"));
    assert!(!kinds(Regime::None).iter().any(|k| {
        matches!(
            *k,
            "task_retry"
                | "node_loss"
                | "straggler"
                | "speculative_task"
                | "corruption_detected"
                | "refetch"
        )
    }));
}

#[test]
fn speculation_caps_the_straggler_tail() {
    // Same stragglers with and without speculative execution: backups cost
    // retry time but bound the tail, so the overall makespan shrinks.
    let seed = campaign_seed();
    let run = |speculation: bool| {
        let mut faults = FaultConfig::with_probability(0.0, seed).with_stragglers(0.4, 8.0);
        if speculation {
            faults = faults.with_speculation(1.5);
        }
        let engine = Engine::unbounded().with_workers(2).with_faults(faults);
        engine.put_records("in", (0..600).map(|i| format!("word{}", i % 13))).unwrap();
        engine.run_job(&wc_job("spec", "in", "out", 8)).unwrap()
    };
    let slow = run(false);
    let capped = run(true);
    assert!(slow.faults.straggler_tasks > 0, "regime must select stragglers");
    assert_eq!(capped.faults.straggler_tasks, slow.faults.straggler_tasks);
    assert!(capped.faults.speculative_tasks() > 0);
    assert!(capped.faults.speculative_wins > 0);
    assert_eq!(slow.faults.speculative_tasks(), 0);
    assert!(
        capped.sim_seconds < slow.sim_seconds,
        "speculation must cut the tail: {} vs {}",
        capped.sim_seconds,
        slow.sim_seconds
    );
}

#[test]
fn exhausted_attempts_fail_the_workflow_not_the_process() {
    let mut failures: Vec<String> = Vec::new();
    for workers in [1usize, 4, 8] {
        let sink = MemorySink::new();
        let engine = Engine::unbounded()
            .with_workers(workers)
            .with_faults(FaultConfig::with_probability(0.9, 5).with_max_attempts(2))
            .with_trace(sink.clone() as Arc<dyn TraceSink>);
        engine.put_records("in", (0..400).map(|i| format!("word{}", i % 11))).unwrap();
        let mut wf = Workflow::new(&engine, "exhaust");
        let err = wf
            .run_job(wc_job("doomed", "in", "out", 6))
            .expect_err("p=0.9 with 2 attempts must exhaust some task");
        assert!(err.is_task_exhausted(), "{err}");
        let stats = wf.finish_failed(&err);
        assert!(!stats.succeeded);
        let failure = stats.failure.expect("failure must be populated");
        assert!(failure.contains("consecutive attempts"), "{failure}");
        failures.push(failure);
        let end = sink
            .take()
            .into_iter()
            .find_map(|e| match e {
                TraceEvent::WorkflowEnd { succeeded, .. } => Some(succeeded),
                _ => None,
            })
            .expect("workflow_end must be emitted for failed workflows");
        assert!(!end, "workflow_end must record the failure");
    }
    failures.dedup();
    assert_eq!(failures.len(), 1, "the failing task is worker-invariant: {failures:?}");
}

/// The profiled chaos workflow: the campaign shape at >4096 input records
/// (so every map input splits into multiple chunks — the regime where
/// worker-dependent chunking would skew per-task histograms), with the
/// combiner optionally attached to every word-count job.
fn run_profiled(regime: Regime, seed: u64, workers: usize, combiner: bool) -> WorkflowStats {
    let engine = Engine::unbounded()
        .with_workers(workers)
        .with_profiling(true)
        .with_faults(faults_for(regime, seed));
    engine.put_records("in", (0..6000).map(|i| format!("word{}", i % 37))).unwrap();
    let attach = |job: JobSpec| {
        if combiner {
            job.with_combiner(combine_fn(
                |key: String, values: Vec<u64>, out: &mut TypedMapEmitter<'_, String, u64>| {
                    out.emit(&key, &values.iter().sum());
                    Ok(())
                },
            ))
        } else {
            job
        }
    };
    let mut wf = Workflow::new(&engine, format!("profiled-{regime:?}"));
    wf.run_stage(vec![attach(wc_job("p-a", "in", "a", 4)), attach(wc_job("p-b", "in", "b", 3))])
        .unwrap();
    wf.run_job(wc_job("p-merge", "a", "c", 2)).unwrap();
    wf.finish(&["c"])
}

#[test]
fn profiles_are_worker_invariant_under_chaos() {
    let seed = campaign_seed();
    // The full profile fingerprint — merged histograms plus every memory
    // high-water mark — must be bit-identical across worker counts in
    // every (regime, combiner) cell.
    for regime in REGIMES {
        for combiner in [false, true] {
            let base = run_profiled(regime, seed, 1, combiner);
            let fingerprint = |stats: &WorkflowStats| {
                (
                    stats.metrics().to_json(),
                    stats.peak_arena_bytes(),
                    stats.peak_task_live_bytes(),
                    stats.peak_spill_entries(),
                    stats.max_partition_shuffle_bytes(),
                )
            };
            assert!(!base.metrics().is_empty(), "{regime:?} combiner={combiner}");
            assert!(base.peak_arena_bytes() > 0, "{regime:?} combiner={combiner}");
            assert!(base.peak_task_live_bytes() > 0, "{regime:?} combiner={combiner}");
            for workers in [4usize, 8] {
                let stats = run_profiled(regime, seed, workers, combiner);
                assert_eq!(
                    fingerprint(&stats),
                    fingerprint(&base),
                    "{regime:?} combiner={combiner} workers={workers}"
                );
            }
        }
    }
    // Duration histograms are also fault-regime-invariant: fault losses
    // are priced into retry_seconds, never into the phase histograms.
    let clean = run_profiled(Regime::None, seed, 4, false);
    let faulted = run_profiled(Regime::TaskFail, seed, 4, false);
    assert!(faulted.total_task_retries() > 0, "the regime must inject");
    assert_eq!(clean.metrics(), faulted.metrics());
    // The combiner legitimately changes the shuffle-side histograms
    // (fewer, wider records reach the reducers) — but never the output.
    let combined = run_profiled(Regime::None, seed, 4, true);
    assert!(
        combined.metrics().to_json() != clean.metrics().to_json(),
        "combiner must be visible in the shuffle histograms"
    );
}

#[test]
fn corruption_detection_counters_are_worker_invariant() {
    // FaultStats under corruption regimes — detections, refetches, and
    // the whole stats fingerprint — must not depend on the worker count.
    let seed = campaign_seed();
    for regime in [Regime::Corruption, Regime::CorruptionCombined] {
        let (base, base_events, base_out) = run_chaos(regime, seed, 1).unwrap();
        assert!(base.total_corruptions_detected() > 0, "{regime:?} must inject");
        for workers in [4usize, 8] {
            let (stats, events, out) = run_chaos(regime, seed, workers).unwrap();
            assert_eq!(
                stats.total_corruptions_detected(),
                base.total_corruptions_detected(),
                "{regime:?} workers={workers}"
            );
            assert_eq!(out, base_out, "{regime:?} workers={workers}");
            assert_eq!(canonical(&events), canonical(&base_events), "{regime:?} w={workers}");
        }
    }
}

#[test]
fn verification_off_shows_checksums_are_load_bearing() {
    // The controlled negative: the exact same corruption draws with
    // verification disabled either silently change the final output or
    // break a record's framing mid-flight — which is precisely why the
    // checksums (and the verified runs' bit-identity above) matter.
    let (_, _, clean_out) = run_chaos(Regime::None, 0, 1).unwrap();
    let seed = (0..100)
        .find(|&seed| {
            let Ok((stats, _, _)) = run_chaos(Regime::Corruption, seed, 1) else {
                return false;
            };
            if stats.total_corruptions_detected() == 0 {
                return false;
            }
            match run_chaos_with(Regime::Corruption, seed, 1, false) {
                Ok((_, _, out)) => out != clean_out,
                Err(_) => true,
            }
        })
        .expect("some seed under 100 must corrupt observably");
    // With verification: detected, refetched, output clean.
    let (verified, _, out) = run_chaos(Regime::Corruption, seed, 4).unwrap();
    assert!(verified.total_corruptions_detected() > 0);
    assert_eq!(out, clean_out);
    // Without: the same flips reach the job undetected.
    match run_chaos_with(Regime::Corruption, seed, 4, false) {
        Ok((stats, _, out)) => {
            assert_eq!(stats.total_corruptions_detected(), 0);
            assert_ne!(out, clean_out, "silent corruption must surface in the output");
        }
        Err(e) => assert!(matches!(e, mrsim::MrError::Codec(_)), "{e:?}"),
    }
}

#[test]
fn poison_record_quarantine_is_worker_invariant() {
    use mrsim::{DfsFile, Rec};
    let bad1 = vec![2, 0, 0, 0, 0xff, 0xfe]; // invalid UTF-8 payload
    let bad2 = vec![9, 0, 0, 0, 0xff]; // truncated payload
    let run = |workers: usize| {
        let engine = Engine::unbounded().with_workers(workers).with_skip_bad_records(8);
        // > 4096 records so the input splits into several map tasks and
        // the two poison records land in different tasks.
        let mut records: Vec<Vec<u8>> =
            (0..6000).map(|i| format!("word{}", i % 17).to_bytes()).collect();
        records.insert(100, bad1.clone());
        records.insert(3000, bad2.clone());
        let file = DfsFile {
            text_bytes: records.iter().map(|r| r.len() as u64).sum(),
            records,
            ..DfsFile::default()
        };
        engine.hdfs().lock().put("in", file).unwrap();
        let stats = engine.run_job(&wc_job("poison", "in", "out", 4)).unwrap();
        let out = engine.hdfs().lock().get("out").unwrap().records.clone();
        let quarantine = engine.hdfs().lock().get("poison.quarantine").unwrap().records.clone();
        (stats.records_skipped, out, quarantine)
    };
    let base = run(1);
    assert_eq!(base.0, 2);
    assert_eq!(base.2, vec![bad1.clone(), bad2.clone()], "quarantine preserves task order");
    for workers in [4usize, 8] {
        assert_eq!(run(workers), base, "workers={workers}");
    }
}

#[test]
fn fault_recovery_is_sort_strategy_invariant() {
    // Replay faulted regimes under the comparison sort: recovery decisions,
    // corruption accounting, and every output byte must match the radix
    // runs. Only the `sort_plan` trace events may differ (strategy tag and
    // map-side run counts), so the trace comparison filters them out.
    let seed = campaign_seed();
    let sans_sort_plans = |events: &[TraceEvent]| {
        let kept: Vec<TraceEvent> =
            events.iter().filter(|e| e.kind() != "sort_plan").cloned().collect();
        canonical(&kept)
    };
    for regime in [Regime::TaskFail, Regime::Corruption, Regime::CorruptionCombined] {
        let (radix_stats, radix_events, radix_out) = run_chaos(regime, seed, 4).unwrap();
        for workers in [1usize, 4, 8] {
            let (stats, events, out) =
                run_chaos_full(regime, seed, workers, true, SortStrategy::Comparison).unwrap();
            assert_eq!(out, radix_out, "{regime:?} workers={workers}");
            assert_eq!(
                stats.total_task_retries(),
                radix_stats.total_task_retries(),
                "{regime:?} workers={workers}"
            );
            assert_eq!(
                stats.total_corruptions_detected(),
                radix_stats.total_corruptions_detected(),
                "{regime:?} workers={workers}"
            );
            assert_eq!(
                sans_sort_plans(&events),
                sans_sort_plans(&radix_events),
                "{regime:?} workers={workers}"
            );
            for e in &events {
                if let TraceEvent::SortPlan { strategy, map_sorted_runs, .. } = e {
                    assert_eq!(*strategy, "comparison");
                    assert_eq!(*map_sorted_runs, 0, "comparison sends nothing pre-sorted");
                }
            }
        }
    }
    // And the radix runs really do ship map-side-sorted runs.
    let (_, radix_events, _) = run_chaos(Regime::TaskFail, seed, 4).unwrap();
    assert!(
        radix_events.iter().any(|e| matches!(
            e,
            TraceEvent::SortPlan { strategy: "radix", map_sorted_runs, .. } if *map_sorted_runs > 0
        )),
        "radix sort_plan events must record sorted runs"
    );
}

#[test]
fn faulted_run_is_slower_but_byte_identical() {
    // The satellite contract in one assertion: injected faults make the
    // simulated clock strictly slower while the output stays identical.
    let seed = campaign_seed();
    let (clean, _, clean_out) = run_chaos(Regime::None, seed, 4).unwrap();
    let (faulted, _, faulted_out) = run_chaos(Regime::Combined, seed, 4).unwrap();
    assert_eq!(clean_out, faulted_out);
    assert!(faulted.total_retry_seconds() > 0.0);
    assert!(faulted.sim_seconds > clean.sim_seconds);
    assert_eq!(clean.final_output_records(), faulted.final_output_records());
    assert_eq!(clean.final_output_text_bytes(), faulted.final_output_text_bytes());
}
