//! Sampling utilities: deterministic Zipf-like multiplicity distributions.
//!
//! The redundancy phenomenon the paper studies is driven by *property
//! multiplicity* — how many triples a subject carries for one property.
//! Real warehouses are heavily skewed (Uniprot has properties with
//! multiplicity up to 13 000; >45 % of DBpedia/BTC properties are
//! multi-valued), so the generators sample multiplicities from a Zipf
//! distribution with configurable exponent and ceiling.

use rand::Rng;

/// A Zipf sampler over `{1, …, n}` with exponent `s`, using a precomputed
/// cumulative table (exact inverse-CDF sampling; `n` is small for our use).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `1..=n` with exponent `s` (`s = 0` is uniform;
    /// larger `s` skews towards 1).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs n >= 1");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample a value in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite")) {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }
}

/// Sample a multiplicity in `1..=max` that is heavy on 1 but has a long
/// tail up to `max` (an *inverted* Zipf over counts). `frac_multi` controls
/// the probability that the value exceeds 1.
pub fn sample_multiplicity<R: Rng + ?Sized>(
    rng: &mut R,
    max: usize,
    frac_multi: f64,
    zipf: &Zipf,
) -> usize {
    debug_assert!(zipf.n() >= max.max(1));
    if max <= 1 || !rng.random_bool(frac_multi.clamp(0.0, 1.0)) {
        return 1;
    }
    // Zipf gives values skewed towards 1; shift by 1 so multi-valued
    // subjects get 2..=max with a long tail.
    (1 + zipf.sample(rng)).min(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_in_range() {
        let z = Zipf::new(100, 1.1);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1..=100).contains(&v));
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut ones = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 1 {
                ones += 1;
            }
        }
        // With s=1.5 over 1..=100, P(1) ≈ 0.38.
        assert!(ones > n / 4, "expected heavy head, got {ones}/{n}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng) - 1] += 1;
        }
        for c in counts {
            assert!(c > 600, "uniform bucket too small: {c}");
        }
    }

    #[test]
    fn zipf_deterministic_for_seed() {
        let z = Zipf::new(50, 1.0);
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..20).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn multiplicity_respects_bounds() {
        let z = Zipf::new(64, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5_000 {
            let m = sample_multiplicity(&mut rng, 64, 0.5, &z);
            assert!((1..=64).contains(&m));
        }
        // frac_multi = 0 -> always 1.
        for _ in 0..100 {
            assert_eq!(sample_multiplicity(&mut rng, 64, 0.0, &z), 1);
        }
        // max = 1 -> always 1.
        for _ in 0..100 {
            assert_eq!(sample_multiplicity(&mut rng, 1, 1.0, &z), 1);
        }
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn zipf_rejects_zero_domain() {
        Zipf::new(0, 1.0);
    }
}
