//! Well-known property tokens shared by the generators and the testbed
//! query catalog.
//!
//! Tokens are canonical N-Triples IRIs, kept short (as namespace-prefixed
//! data would be after dictionary compression) so laptop-scale runs stay
//! fast while preserving *relative* sizes.

/// BSBM-like e-commerce vocabulary (Products / Producers / Offers /
/// Reviews), mirroring the Berlin SPARQL Benchmark schema the paper uses
/// for its B-series queries and the Figure 3 case study.
pub mod bsbm {
    /// `rdf:type`.
    pub const TYPE: &str = "<rdf:type>";
    /// `rdfs:label` — single-valued.
    pub const LABEL: &str = "<rdfs:label>";
    /// `rdfs:comment` — single-valued, long literal.
    pub const COMMENT: &str = "<rdfs:comment>";
    /// `bsbm:productFeature` — **multi-valued** (the paper's redundancy
    /// driver for the B queries).
    pub const PRODUCT_FEATURE: &str = "<bsbm:productFeature>";
    /// `bsbm:producer` — single-valued product → producer edge (OS joins).
    pub const PRODUCER: &str = "<bsbm:producer>";
    /// `bsbm:productPropertyNumeric1..3` — single-valued numeric props.
    pub const NUMERIC: [&str; 3] = [
        "<bsbm:productPropertyNumeric1>",
        "<bsbm:productPropertyNumeric2>",
        "<bsbm:productPropertyNumeric3>",
    ];
    /// `bsbm:productPropertyTextual1..3`.
    pub const TEXTUAL: [&str; 3] = [
        "<bsbm:productPropertyTextual1>",
        "<bsbm:productPropertyTextual2>",
        "<bsbm:productPropertyTextual3>",
    ];
    /// Producer's country.
    pub const COUNTRY: &str = "<bsbm:country>";
    /// Producer's homepage.
    pub const HOMEPAGE: &str = "<foaf:homepage>";
    /// Offer → product edge.
    pub const OFFER_PRODUCT: &str = "<bsbm:product>";
    /// Offer price.
    pub const PRICE: &str = "<bsbm:price>";
    /// Offer vendor.
    pub const VENDOR: &str = "<bsbm:vendor>";
    /// Review → product edge.
    pub const REVIEW_FOR: &str = "<bsbm:reviewFor>";
    /// Review rating.
    pub const RATING: &str = "<bsbm:rating1>";
    /// Review title.
    pub const REVIEW_TITLE: &str = "<dc:title>";
    /// Class token for products.
    pub const CLASS_PRODUCT: &str = "<bsbm:Product>";
    /// Class token for producers.
    pub const CLASS_PRODUCER: &str = "<bsbm:Producer>";
    /// Class token for offers.
    pub const CLASS_OFFER: &str = "<bsbm:Offer>";
    /// Class token for reviews.
    pub const CLASS_REVIEW: &str = "<bsbm:Review>";
}

/// Bio2RDF-like life-sciences vocabulary (genes, GO terms, cross
/// references) for the A-series queries. `XREF` is the high-multiplicity
/// property (Uniprot-style skew).
pub mod bio2rdf {
    /// Gene label.
    pub const LABEL: &str = "<rdfs:label>";
    /// Gene symbol.
    pub const SYMBOL: &str = "<bio:geneSymbol>";
    /// Gene synonym — multi-valued.
    pub const SYNONYM: &str = "<bio:synonym>";
    /// Gene → GO-term edge — multi-valued.
    pub const X_GO: &str = "<bio:xGO>";
    /// Gene → external reference — **high multiplicity** (Zipf tail).
    pub const X_REF: &str = "<bio:xRef>";
    /// Gene → pathway edge.
    pub const PATHWAY: &str = "<bio:pathway>";
    /// Gene → encoded protein.
    pub const ENCODES: &str = "<bio:encodes>";
    /// GO term label.
    pub const GO_LABEL: &str = "<go:label>";
    /// GO term namespace (process/function/component).
    pub const GO_NAMESPACE: &str = "<go:namespace>";
    /// Reference database name.
    pub const REF_DB: &str = "<ref:database>";
    /// Reference identifier literal.
    pub const REF_ID: &str = "<ref:identifier>";
    /// Article title for publication references.
    pub const ARTICLE_TITLE: &str = "<ref:title>";
}

/// DBpedia-Infobox / BTC-like vocabulary: a large open property set with a
/// high multi-valued fraction, for the C-series queries.
pub mod dbpedia {
    /// `rdf:type`.
    pub const TYPE: &str = "<rdf:type>";
    /// `rdfs:label`.
    pub const LABEL: &str = "<rdfs:label>";
    /// Entity class: scientist.
    pub const CLASS_SCIENTIST: &str = "<dbo:Scientist>";
    /// Entity class: TV series.
    pub const CLASS_TVSHOW: &str = "<dbo:TelevisionShow>";
    /// Entity class: city.
    pub const CLASS_CITY: &str = "<dbo:City>";
    /// Link between entities (birthPlace-like) — the known relation used in
    /// C3/C4 alongside unknown ones.
    pub const BIRTH_PLACE: &str = "<dbo:birthPlace>";
    /// Prefix for the open infobox property space `<dbp:propN>`.
    pub const INFOBOX_PREFIX: &str = "<dbp:prop";
    /// Build the `i`-th infobox property token.
    pub fn infobox(i: usize) -> String {
        format!("{INFOBOX_PREFIX}{i}>")
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn infobox_tokens_are_iris() {
        let t = super::dbpedia::infobox(17);
        assert!(t.starts_with('<') && t.ends_with('>'));
        assert!(t.contains("prop17"));
    }

    #[test]
    fn vocab_tokens_are_bracketed() {
        for t in [super::bsbm::PRODUCT_FEATURE, super::bio2rdf::X_REF, super::dbpedia::BIRTH_PLACE]
        {
            assert!(t.starts_with('<') && t.ends_with('>'), "{t}");
        }
    }
}
