//! Bio2RDF-like life-sciences dataset generator.
//!
//! Structurally mirrors the integrated biological warehouse of the paper's
//! A-series experiments: genes carrying `label`/`geneSymbol` plus
//! multi-valued `synonym`, `xGO` and — crucially — **high-multiplicity**
//! `xRef` edges (Uniprot properties reach multiplicity ≈ 13 K; here the
//! ceiling is configurable), GO terms with labels and namespaces, and
//! reference records. Literals include gene-name words ("hexokinase",
//! "nur77", …) so the paper's partially-bound-object queries (A1, A5, A6)
//! are selective in the same way.

use crate::dist::{sample_multiplicity, Zipf};
use crate::vocab::bio2rdf as v;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{STriple, TripleStore};

/// Gene-name word list used in labels/symbols; queries bind against these.
pub const GENE_WORDS: [&str; 8] =
    ["hexokinase", "nur77", "retinoid", "homeobox", "kinase", "amylase", "insulin", "collagen"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct Bio2RdfConfig {
    /// Number of gene records.
    pub genes: usize,
    /// Number of GO terms.
    pub go_terms: usize,
    /// Number of external reference records.
    pub references: usize,
    /// Maximum `xRef` multiplicity (high-multiplicity skew ceiling).
    pub max_xref: usize,
    /// Maximum `xGO` multiplicity.
    pub max_xgo: usize,
    /// Fraction of genes with multi-valued properties.
    pub multi_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Bio2RdfConfig {
    fn default() -> Self {
        Bio2RdfConfig {
            genes: 500,
            go_terms: 150,
            references: 400,
            max_xref: 64,
            max_xgo: 8,
            multi_fraction: 0.8,
            seed: 42,
        }
    }
}

impl Bio2RdfConfig {
    /// Convenience constructor for a gene count.
    pub fn with_genes(genes: usize) -> Self {
        let refs = genes.max(10);
        Bio2RdfConfig {
            genes,
            go_terms: (genes / 3).max(10),
            references: refs,
            ..Default::default()
        }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate the dataset.
pub fn generate(cfg: &Bio2RdfConfig) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = TripleStore::new();
    let xref_zipf = Zipf::new(cfg.max_xref.max(1), 1.1);
    let xgo_zipf = Zipf::new(cfg.max_xgo.max(1), 0.9);
    let syn_zipf = Zipf::new(4, 1.0);

    for i in 0..cfg.genes {
        let s = format!("<gene{i}>");
        let word = GENE_WORDS[rng.random_range(0..GENE_WORDS.len())];
        store.insert(STriple::new(&s, v::LABEL, format!("\"{word} gene {i}\"")));
        store.insert(STriple::new(&s, v::SYMBOL, format!("\"{}{}\"", &word[..3], i)));
        let syns = sample_multiplicity(&mut rng, 4, cfg.multi_fraction, &syn_zipf);
        for k in 0..syns {
            store.insert(STriple::new(&s, v::SYNONYM, format!("\"{word}-alias-{k}\"")));
        }
        let gos = sample_multiplicity(&mut rng, cfg.max_xgo, cfg.multi_fraction, &xgo_zipf);
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < gos.min(cfg.go_terms) {
            seen.insert(rng.random_range(0..cfg.go_terms));
        }
        for g in seen {
            store.insert(STriple::new(&s, v::X_GO, format!("<go{g}>")));
        }
        // High-multiplicity xRef — the redundancy driver for A-queries.
        let refs = sample_multiplicity(&mut rng, cfg.max_xref, cfg.multi_fraction, &xref_zipf);
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < refs.min(cfg.references) {
            seen.insert(rng.random_range(0..cfg.references));
        }
        for r in seen {
            store.insert(STriple::new(&s, v::X_REF, format!("<ref{r}>")));
        }
        store.insert(STriple::new(&s, v::PATHWAY, format!("<pathway{}>", rng.random_range(0..40))));
        if rng.random_bool(0.7) {
            store.insert(STriple::new(&s, v::ENCODES, format!("<protein{i}>")));
        }
    }

    for g in 0..cfg.go_terms {
        let s = format!("<go{g}>");
        let ns = ["process", "function", "component"][g % 3];
        store.insert(STriple::new(&s, v::GO_LABEL, format!("\"GO term {g}\"")));
        store.insert(STriple::new(&s, v::GO_NAMESPACE, format!("\"{ns}\"")));
    }

    for r in 0..cfg.references {
        let s = format!("<ref{r}>");
        let db = ["pubmed", "omim", "embl", "pdb"][r % 4];
        store.insert(STriple::new(&s, v::REF_DB, format!("\"{db}\"")));
        store.insert(STriple::new(&s, v::REF_ID, format!("\"{db}:{r}\"")));
        if r % 4 == 0 {
            store.insert(STriple::new(
                &s,
                v::ARTICLE_TITLE,
                format!("\"Study {r} of gene function\""),
            ));
        }
    }

    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&Bio2RdfConfig::with_genes(40));
        let b = generate(&Bio2RdfConfig::with_genes(40));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn xref_has_high_multiplicity_tail() {
        let cfg = Bio2RdfConfig { genes: 400, max_xref: 64, ..Default::default() };
        let stats = generate(&cfg).stats();
        let xref = &stats.per_property[&rdf_model::atom::atom(v::X_REF)];
        assert!(xref.max_multiplicity >= 16, "max mult {}", xref.max_multiplicity);
        assert!(xref.is_multi_valued());
    }

    #[test]
    fn labels_contain_gene_words() {
        let store = generate(&Bio2RdfConfig::with_genes(100));
        let hexo = store.iter().filter(|t| &*t.p == v::LABEL && t.o.contains("hexokinase")).count();
        assert!(hexo > 0, "no hexokinase labels generated");
    }

    #[test]
    fn go_terms_have_labels() {
        let store = generate(&Bio2RdfConfig::with_genes(30));
        let gos: std::collections::BTreeSet<_> =
            store.iter().filter(|t| &*t.p == v::X_GO).map(|t| t.o.clone()).collect();
        let labelled: std::collections::BTreeSet<_> =
            store.iter().filter(|t| &*t.p == v::GO_LABEL).map(|t| t.s.clone()).collect();
        for g in gos {
            assert!(labelled.contains(&g), "GO {g} has no label");
        }
    }

    #[test]
    fn multi_valued_fraction_is_high() {
        let stats = generate(&Bio2RdfConfig::with_genes(300)).stats();
        // Paper: real biological data has many multi-valued properties.
        assert!(stats.multi_valued_fraction >= 0.2, "{}", stats.multi_valued_fraction);
    }
}
