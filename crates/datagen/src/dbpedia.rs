//! DBpedia-Infobox / BTC-like dataset generator.
//!
//! The paper's C-series experiments use DBpedia Infobox (33.7 M triples)
//! and BTC-09 (1.5 B triples); both have a *large open property space*
//! (thousands of infobox properties) with **more than 45 % of properties
//! multi-valued**. That open property space is exactly what makes
//! vertical-partitioned relational processing of unbound-property queries
//! painful (a union over all property relations), so the generator's
//! fidelity target is: many distinct properties, Zipfian property usage,
//! high multi-valued fraction, plus typed entities (Scientist, TVShow,
//! City) so queries C1–C4 have their anchors.

use crate::dist::{sample_multiplicity, Zipf};
use crate::vocab::dbpedia as v;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{STriple, TripleStore};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DbpediaConfig {
    /// Number of entities.
    pub entities: usize,
    /// Size of the open infobox property space.
    pub property_space: usize,
    /// Properties attached per entity (average).
    pub props_per_entity: usize,
    /// Maximum multiplicity of one property on one entity.
    pub max_multiplicity: usize,
    /// Probability that a property occurrence is multi-valued.
    pub multi_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DbpediaConfig {
    fn default() -> Self {
        DbpediaConfig {
            entities: 1000,
            property_space: 300,
            props_per_entity: 8,
            max_multiplicity: 12,
            multi_fraction: 0.5,
            seed: 42,
        }
    }
}

impl DbpediaConfig {
    /// Convenience constructor for an entity count.
    pub fn with_entities(entities: usize) -> Self {
        DbpediaConfig { entities, ..Default::default() }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A BTC-like variant: bigger property space, heavier skew (the BTC-09
    /// crawl aggregates many sources).
    pub fn btc_like(entities: usize) -> Self {
        DbpediaConfig {
            entities,
            property_space: 800,
            props_per_entity: 10,
            max_multiplicity: 24,
            multi_fraction: 0.6,
            seed: 43,
        }
    }
}

/// Generate the dataset.
pub fn generate(cfg: &DbpediaConfig) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = TripleStore::new();
    let prop_zipf = Zipf::new(cfg.property_space.max(1), 1.0);
    let mult_zipf = Zipf::new(cfg.max_multiplicity.max(1), 1.0);
    let cities = (cfg.entities / 20).max(2);

    // Cities first (targets for birthPlace links).
    for c in 0..cities {
        let s = format!("<city{c}>");
        store.insert(STriple::new(&s, v::TYPE, v::CLASS_CITY));
        store.insert(STriple::new(&s, v::LABEL, format!("\"City {c}\"")));
        attach_infobox(&mut store, &mut rng, &s, cfg, &prop_zipf, &mult_zipf, cities);
    }

    for i in 0..cfg.entities {
        let s = format!("<entity{i}>");
        let class = match i % 10 {
            0..=2 => v::CLASS_SCIENTIST,
            3 => v::CLASS_TVSHOW,
            _ => "<dbo:Thing>",
        };
        store.insert(STriple::new(&s, v::TYPE, class));
        store.insert(STriple::new(&s, v::LABEL, format!("\"Entity {i}\"")));
        if class == v::CLASS_SCIENTIST {
            store.insert(STriple::new(
                &s,
                v::BIRTH_PLACE,
                format!("<city{}>", rng.random_range(0..cities)),
            ));
        }
        attach_infobox(&mut store, &mut rng, &s, cfg, &prop_zipf, &mult_zipf, cities);
    }

    store
}

/// Attach Zipf-chosen infobox properties (some multi-valued, some linking
/// to cities/entities so unbound joins have targets).
fn attach_infobox(
    store: &mut TripleStore,
    rng: &mut StdRng,
    s: &str,
    cfg: &DbpediaConfig,
    prop_zipf: &Zipf,
    mult_zipf: &Zipf,
    cities: usize,
) {
    let n_props = rng.random_range(1..=cfg.props_per_entity.max(1) * 2);
    let mut chosen = std::collections::BTreeSet::new();
    for _ in 0..n_props {
        chosen.insert(prop_zipf.sample(rng));
    }
    for p in chosen {
        let prop = v::infobox(p);
        let mult = sample_multiplicity(rng, cfg.max_multiplicity, cfg.multi_fraction, mult_zipf);
        for m in 0..mult {
            // A third of infobox values are entity links (joinable); the
            // rest are literals.
            let obj = if p % 3 == 0 {
                format!("<city{}>", rng.random_range(0..cities))
            } else {
                format!("\"value {p}-{m}\"")
            };
            store.insert(STriple::new(s, &prop, obj));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&DbpediaConfig::with_entities(60));
        let b = generate(&DbpediaConfig::with_entities(60));
        assert_eq!(a.triples(), b.triples());
    }

    #[test]
    fn multi_valued_fraction_matches_paper_regime() {
        let stats = generate(&DbpediaConfig::with_entities(800)).stats();
        // Paper: >45 % of properties multi-valued in DBInfobox and BTC-09.
        assert!(
            stats.multi_valued_fraction > 0.45,
            "multi-valued fraction {} too low",
            stats.multi_valued_fraction
        );
    }

    #[test]
    fn property_space_is_large() {
        let stats = generate(&DbpediaConfig::with_entities(800)).stats();
        assert!(stats.distinct_properties > 100, "{}", stats.distinct_properties);
    }

    #[test]
    fn scientists_have_birth_places() {
        let store = generate(&DbpediaConfig::with_entities(100));
        let scientists: std::collections::BTreeSet<_> = store
            .iter()
            .filter(|t| &*t.p == v::TYPE && &*t.o == v::CLASS_SCIENTIST)
            .map(|t| t.s.clone())
            .collect();
        assert!(!scientists.is_empty());
        let with_bp: std::collections::BTreeSet<_> =
            store.iter().filter(|t| &*t.p == v::BIRTH_PLACE).map(|t| t.s.clone()).collect();
        for s in &scientists {
            assert!(with_bp.contains(s), "scientist {s} lacks birthPlace");
        }
    }

    #[test]
    fn btc_variant_is_bigger_and_skeweder() {
        let d = generate(&DbpediaConfig::with_entities(300));
        let b = generate(&DbpediaConfig::btc_like(300));
        assert!(b.stats().distinct_properties > d.stats().distinct_properties);
    }
}
