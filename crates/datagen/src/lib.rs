//! # datagen — structurally-faithful synthetic RDF generators
//!
//! The paper evaluates on datasets we cannot ship (Bio2RDF: 4.7 B triples;
//! BSBM-1M/2M: 370/700 M; DBpedia Infobox: 33.7 M; BTC-09: 1.5 B). The
//! redundancy phenomenon it studies depends on *structure* — property
//! multiplicity distributions, star shapes, open property spaces — not on
//! absolute scale, so these generators reproduce the structure at laptop
//! scale with deterministic seeds:
//!
//! * [`bsbm`] — products with multi-valued `productFeature` (B-series
//!   queries, Figure 3 case study, Figures 9/10/11/12);
//! * [`bio2rdf`] — genes with high-multiplicity `xRef` edges and gene-word
//!   literals for partially-bound-object selections (A-series, Figure 13);
//! * [`dbpedia`] — open infobox property space with >45 % multi-valued
//!   properties, plus a BTC-like variant (C-series, Figure 14);
//! * [`dist`] — the Zipf machinery behind all multiplicity sampling;
//! * [`vocab`] — the property tokens shared with the query catalog.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bio2rdf;
pub mod bsbm;
pub mod dbpedia;
pub mod dist;
pub mod vocab;

pub use bio2rdf::Bio2RdfConfig;
pub use bsbm::BsbmConfig;
pub use dbpedia::DbpediaConfig;
pub use dist::Zipf;
