//! BSBM-like synthetic dataset generator.
//!
//! Mirrors the structure of the Berlin SPARQL Benchmark data the paper
//! uses for scalability experiments (BSBM-1M ≈ 370 M triples, BSBM-2M ≈
//! 700 M triples): products with a multi-valued `productFeature` property,
//! producers, offers and reviews. The `scale` knob is the number of
//! products; all other entity counts derive from it with BSBM-like ratios,
//! so ~`scale × 37` triples are produced — the paper's ratio of triples to
//! products.

use crate::dist::{sample_multiplicity, Zipf};
use crate::vocab::bsbm as v;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdf_model::{STriple, TripleStore};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct BsbmConfig {
    /// Number of products (the paper's "1M"/"2M" scale knob).
    pub products: usize,
    /// Distinct product features (objects of `productFeature`).
    pub features: usize,
    /// Maximum `productFeature` multiplicity per product.
    pub max_features_per_product: usize,
    /// Fraction of products with more than one feature.
    pub multi_feature_fraction: f64,
    /// Offers per product (average).
    pub offers_per_product: f64,
    /// Reviews per product (average).
    pub reviews_per_product: f64,
    /// RNG seed — equal seeds produce identical datasets.
    pub seed: u64,
}

impl Default for BsbmConfig {
    fn default() -> Self {
        BsbmConfig {
            products: 1000,
            features: 200,
            max_features_per_product: 20,
            multi_feature_fraction: 0.9,
            offers_per_product: 4.0,
            reviews_per_product: 2.0,
            seed: 42,
        }
    }
}

impl BsbmConfig {
    /// Convenience constructor for a given product count.
    pub fn with_products(products: usize) -> Self {
        BsbmConfig { products, ..Default::default() }
    }

    /// Set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate the dataset.
pub fn generate(cfg: &BsbmConfig) -> TripleStore {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = TripleStore::new();
    let producers = (cfg.products / 20).max(1);
    let feature_zipf = Zipf::new(cfg.max_features_per_product.max(1), 0.8);

    // Producers.
    for i in 0..producers {
        let s = format!("<bsbm:producer{i}>");
        store.insert(STriple::new(&s, v::TYPE, v::CLASS_PRODUCER));
        store.insert(STriple::new(&s, v::LABEL, format!("\"Producer {i}\"")));
        store.insert(STriple::new(&s, v::COUNTRY, format!("<country{}>", i % 24)));
        store.insert(STriple::new(&s, v::HOMEPAGE, format!("<http://producer{i}.example>")));
    }

    // Products.
    for i in 0..cfg.products {
        let s = format!("<bsbm:product{i}>");
        store.insert(STriple::new(&s, v::TYPE, v::CLASS_PRODUCT));
        store.insert(STriple::new(&s, v::LABEL, format!("\"Product {i}\"")));
        store.insert(STriple::new(
            &s,
            v::COMMENT,
            format!("\"A fine product number {i} with a longer descriptive comment.\""),
        ));
        store.insert(STriple::new(
            &s,
            v::PRODUCER,
            format!("<bsbm:producer{}>", rng.random_range(0..producers)),
        ));
        for p in v::NUMERIC {
            store.insert(STriple::new(&s, p, format!("\"{}\"", rng.random_range(0..2000))));
        }
        for p in v::TEXTUAL {
            store.insert(STriple::new(
                &s,
                p,
                format!("\"text value {}\"", rng.random_range(0..500)),
            ));
        }
        // Multi-valued productFeature — the redundancy driver.
        let k = sample_multiplicity(
            &mut rng,
            cfg.max_features_per_product,
            cfg.multi_feature_fraction,
            &feature_zipf,
        );
        let mut seen = std::collections::BTreeSet::new();
        while seen.len() < k.min(cfg.features) {
            seen.insert(rng.random_range(0..cfg.features));
        }
        for f in seen {
            store.insert(STriple::new(&s, v::PRODUCT_FEATURE, format!("<bsbm:feature{f}>")));
        }
    }

    // Feature entities (so OS joins through productFeature have targets).
    for f in 0..cfg.features {
        let s = format!("<bsbm:feature{f}>");
        store.insert(STriple::new(&s, v::LABEL, format!("\"Feature {f}\"")));
    }

    // Offers.
    let offers = (cfg.products as f64 * cfg.offers_per_product) as usize;
    for i in 0..offers {
        let s = format!("<bsbm:offer{i}>");
        store.insert(STriple::new(&s, v::TYPE, v::CLASS_OFFER));
        store.insert(STriple::new(
            &s,
            v::OFFER_PRODUCT,
            format!("<bsbm:product{}>", rng.random_range(0..cfg.products)),
        ));
        store.insert(STriple::new(&s, v::PRICE, format!("\"{}\"", rng.random_range(1..10_000))));
        store.insert(STriple::new(&s, v::VENDOR, format!("<bsbm:vendor{}>", i % 50)));
    }

    // Reviews.
    let reviews = (cfg.products as f64 * cfg.reviews_per_product) as usize;
    for i in 0..reviews {
        let s = format!("<bsbm:review{i}>");
        store.insert(STriple::new(&s, v::TYPE, v::CLASS_REVIEW));
        store.insert(STriple::new(
            &s,
            v::REVIEW_FOR,
            format!("<bsbm:product{}>", rng.random_range(0..cfg.products)),
        ));
        store.insert(STriple::new(&s, v::RATING, format!("\"{}\"", rng.random_range(1..=10))));
        store.insert(STriple::new(&s, v::REVIEW_TITLE, format!("\"Review {i}\"")));
    }

    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&BsbmConfig::with_products(50));
        let b = generate(&BsbmConfig::with_products(50));
        assert_eq!(a.triples(), b.triples());
        let c = generate(&BsbmConfig::with_products(50).with_seed(7));
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn product_feature_is_multi_valued() {
        let store = generate(&BsbmConfig::with_products(200));
        let stats = store.stats();
        let pf = &stats.per_property[&rdf_model::atom::atom(v::PRODUCT_FEATURE)];
        assert!(pf.is_multi_valued());
        assert!(pf.mean_multiplicity > 1.5, "mean {}", pf.mean_multiplicity);
        assert!(pf.max_multiplicity <= 20);
    }

    #[test]
    fn label_is_single_valued() {
        let store = generate(&BsbmConfig::with_products(100));
        let stats = store.stats();
        let label = &stats.per_property[&rdf_model::atom::atom(v::LABEL)];
        assert_eq!(label.max_multiplicity, 1);
    }

    #[test]
    fn scale_ratio_roughly_bsbm() {
        // Paper: 1M products ≈ 370M triples (~37× products + fixed cost).
        let store = generate(&BsbmConfig::with_products(500));
        let ratio = store.len() as f64 / 500.0;
        assert!((15.0..60.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn all_offers_reference_existing_products() {
        let store = generate(&BsbmConfig::with_products(30));
        for t in store.iter() {
            if &*t.p == v::OFFER_PRODUCT {
                assert!(t.o.starts_with("<bsbm:product"));
            }
        }
    }
}
