//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and stats
//! structs but never actually serializes them (there is no serde_json or
//! similar in the dependency tree). These derives therefore expand to
//! nothing: the derive *names* resolve, `#[serde(...)]` attributes are
//! accepted, and no code is generated.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
