//! Offline stand-in for `rand` 0.9.
//!
//! Implements exactly the API subset the workspace's data generators use:
//! `StdRng::seed_from_u64`, `Rng::random::<f64>()`, `Rng::random_range`
//! over integer `Range`/`RangeInclusive`, and `Rng::random_bool`. The
//! generator is splitmix64 — statistically fine for synthetic-data
//! sampling and fully deterministic per seed, which is all the datagen
//! crate's property tests require. Streams differ from real `StdRng`, so
//! datasets are reproducible per *workspace build*, not across the real
//! crate.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit source (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly-distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable constructor (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed. Equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types.
pub mod rngs {
    /// The workspace's standard RNG: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed so adjacent seeds do not yield overlapping
            // splitmix sequences.
            StdRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
        }
    }
}

/// A type samplable uniformly from its full domain via [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits mapped to [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// A range type samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods (subset of `rand::Rng`), implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Sample uniformly from an integer range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let stream = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..8).map(|_| rng.random_range(0..1000usize)).collect::<Vec<_>>()
        };
        assert_eq!(stream(1), stream(1));
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2000 {
            let a = rng.random_range(0..7usize);
            assert!(a < 7);
            let b = rng.random_range(1..=10i32);
            assert!((1..=10).contains(&b));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn bool_probability_endpoints() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }
}
