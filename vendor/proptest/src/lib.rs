//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, on a deterministic per-test RNG. Differences from
//! real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs via
//!   `Debug` but is not minimized.
//! * **No persistence.** `*.proptest-regressions` seed files are neither
//!   read nor written (their hashed seeds only replay under the real
//!   crate). Known regressions must therefore also be pinned as explicit
//!   unit tests — which this workspace does.
//! * Generation is seeded from the test's module path and name, so runs
//!   are reproducible without any external state.
//!
//! Supported surface: `proptest!` (with optional `#![proptest_config]`),
//! `prop_assert!`/`prop_assert_eq!`, integer range strategies, regex-subset
//! string strategies (`"[a-z][a-z0-9]{0,8}"` style), tuples, `Just`,
//! `Union`, `prop_map`/`prop_flat_map`/`boxed`, `collection::vec`,
//! `sample::select`/`subsequence`, and `option::of`.

pub mod strategy;

pub mod test_runner;

/// `prop::collection` — collection strategies.
pub mod collection {
    use crate::strategy::{SizeBounds, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Generate vectors of values from `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeBounds) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.min, self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `prop::sample` — sampling from explicit value sets.
pub mod sample {
    use crate::strategy::{SizeBounds, Strategy};
    use crate::test_runner::TestRng;

    /// Strategy choosing one element of a fixed vector.
    pub struct Select<T> {
        choices: Vec<T>,
    }

    /// Choose uniformly from `choices`.
    ///
    /// # Panics
    /// Panics at generation time if `choices` is empty.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        Select { choices }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.choices.is_empty(), "select() needs at least one choice");
            self.choices[rng.usize_in(0, self.choices.len() - 1)].clone()
        }
    }

    /// Strategy choosing an order-preserving subsequence of a fixed vector.
    pub struct Subsequence<T> {
        source: Vec<T>,
        min: usize,
        max: usize,
    }

    /// Choose a subsequence of `source` (order preserved) whose length lies
    /// in `size`.
    pub fn subsequence<T: Clone>(source: Vec<T>, size: impl SizeBounds) -> Subsequence<T> {
        let (min, max) = size.bounds();
        Subsequence { source, min, max }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let n = self.source.len();
            let k = rng.usize_in(self.min.min(n), self.max.min(n));
            // Draw k distinct indices, then emit in source order.
            let mut picked = vec![false; n];
            let mut chosen = 0;
            while chosen < k {
                let i = rng.usize_in(0, n - 1);
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.source.iter().zip(&picked).filter(|(_, &p)| p).map(|(v, _)| v.clone()).collect()
        }
    }
}

/// `prop::option` — optional-value strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generate `Some` of the inner strategy's values ~75 % of the time,
    /// `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.usize_in(0, 3) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The conventional prelude. `prop` re-exports the strategy modules under
/// the name the real crate's prelude uses.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Assert a condition inside a `proptest!` body, failing the case (with
/// its generated inputs reported) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategies = ($( $strat, )+);
                #[allow(non_snake_case)]
                let ($( $arg, )+) = &strategies;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        u64::from(case),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);
                    )+
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                        $(&$arg,)+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:{}",
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
