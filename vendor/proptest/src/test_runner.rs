//! Test-runner plumbing: deterministic per-case RNG, run configuration,
//! and the failure type `prop_assert!` produces.

/// Configuration for a `proptest!` block.
///
/// Mirrors the (stable subset of the) real crate's struct so call sites
/// like `ProptestConfig { cases: 24, ..ProptestConfig::default() }` work
/// unchanged.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig { cases, max_shrink_iters: 0 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold for the generated inputs.
    Fail(String),
    /// The inputs were rejected (not used by this workspace, kept for
    /// source compatibility).
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG driving generation: splitmix64 seeded from the test's
/// fully-qualified name and case index, so every run of the suite sees the
/// same inputs with no persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        let seed = fnv1a(name.as_bytes()) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { state: seed ^ 0x6A09_E667_F3BC_C908 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `usize` in `[min, max]` (inclusive).
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        let span = (max - min) as u128 + 1;
        min + ((self.next_u64() as u128) % span) as usize
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_streams_are_deterministic_and_distinct() {
        let draw = |case| TestRng::for_case("t", case).next_u64();
        assert_eq!(draw(0), draw(0));
        assert_ne!(draw(0), draw(1));
        assert_ne!(TestRng::for_case("a", 0).next_u64(), TestRng::for_case("b", 0).next_u64());
    }

    #[test]
    fn usize_in_covers_inclusive_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.usize_in(0, 2)] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert_eq!(rng.usize_in(5, 5), 5);
    }
}
