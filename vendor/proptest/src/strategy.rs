//! Strategies: composable random-value generators.
//!
//! The [`Strategy`] trait and the combinators the workspace's tests use.
//! Generation is pure: a strategy plus a [`TestRng`] state yields a value;
//! there is no shrinking tree.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { source: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Picks uniformly among several boxed strategies of the same value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build a union over the given strategies.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: impl IntoIterator<Item = BoxedStrategy<T>>) -> Self {
        let options: Vec<_> = options.into_iter().collect();
        assert!(!options.is_empty(), "Union needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_in(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// A `&str` is a strategy generating strings matching it as a regex.
///
/// Supported subset (all this workspace's patterns need): literal
/// characters, character classes `[a-z0-9_-]` with ranges and literals
/// (`-` last is literal), and `{min,max}` / `{n}` repetition after a class
/// or literal.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (choices, min, max) in &elements {
            let reps = rng.usize_in(*min, *max);
            for _ in 0..reps {
                out.push(pick_char(choices, rng));
            }
        }
        out
    }
}

/// One atom of the pattern: allowed char spans plus repetition bounds.
type Element = (Vec<(char, char)>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Element> {
    let chars: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let spans = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pat:?}"));
            let inner = &chars[i + 1..i + close];
            i += close + 1;
            parse_class(inner, pat)
        } else {
            let c = chars[i];
            i += 1;
            vec![(c, c)]
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pat:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push((spans, min, max));
    }
    out
}

fn parse_class(inner: &[char], pat: &str) -> Vec<(char, char)> {
    assert!(!inner.is_empty(), "empty character class in pattern {pat:?}");
    let mut spans = Vec::new();
    let mut j = 0;
    while j < inner.len() {
        if j + 2 < inner.len() && inner[j + 1] == '-' {
            spans.push((inner[j], inner[j + 2]));
            j += 3;
        } else if j + 2 == inner.len() && inner[j + 1] == '-' {
            // `-` before the closing bracket with a range end present.
            spans.push((inner[j], inner[j])); // left char literal
            spans.push(('-', '-'));
            j += 2;
        } else {
            spans.push((inner[j], inner[j]));
            j += 1;
        }
    }
    spans
}

fn pick_char(spans: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = spans.iter().map(|&(lo, hi)| hi as u32 - lo as u32 + 1).sum();
    let mut pick = rng.usize_in(0, total as usize - 1) as u32;
    for &(lo, hi) in spans {
        let width = hi as u32 - lo as u32 + 1;
        if pick < width {
            return char::from_u32(lo as u32 + pick).expect("span stays in valid chars");
        }
        pick -= width;
    }
    unreachable!("pick within total width")
}

/// Length bounds accepted by sized strategies (`collection::vec`,
/// `sample::subsequence`).
pub trait SizeBounds {
    /// `(min, max)` inclusive.
    fn bounds(&self) -> (usize, usize);
}

impl SizeBounds for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range");
        (self.start, self.end - 1)
    }
}

impl SizeBounds for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

impl SizeBounds for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (1usize..5).generate(&mut r);
            assert!((1..5).contains(&v));
            let w = (1u64..=3).generate(&mut r);
            assert!((1..=3).contains(&w));
            let (a, b) = ((0u32..2), (0i32..2)).generate(&mut r);
            assert!(a < 2 && b < 2);
        }
    }

    #[test]
    fn regex_subset_shapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let printable = "[ -~]{0,60}".generate(&mut r);
            assert!(printable.len() <= 60);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
            let trailing_dash = "[a-zA-Z0-9_-]{1,5}".generate(&mut r);
            assert!(trailing_dash
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn union_map_flat_map_boxed() {
        let mut r = rng();
        let u = Union::new([Just(1u8).boxed(), Just(2u8).boxed()]);
        let mapped = (0u8..3).prop_map(|v| v * 10);
        let flat = (1usize..3).prop_flat_map(|n| crate::collection::vec(Just(n), n..n + 1));
        for _ in 0..100 {
            assert!(matches!(u.generate(&mut r), 1 | 2));
            assert!(matches!(mapped.generate(&mut r), 0 | 10 | 20));
            let v = flat.generate(&mut r);
            assert!(!v.is_empty() && v.iter().all(|&x| x == v.len()));
        }
    }

    #[test]
    fn sample_and_option() {
        let mut r = rng();
        let sel = crate::sample::select(vec!["a", "b"]);
        let sub = crate::sample::subsequence(vec![1, 2, 3, 4], 1..=2);
        let opt = crate::option::of(Just(7u8));
        let mut nones = 0;
        for _ in 0..200 {
            assert!(matches!(sel.generate(&mut r), "a" | "b"));
            let s = sub.generate(&mut r);
            assert!((1..=2).contains(&s.len()));
            assert!(s.windows(2).all(|w| w[0] < w[1]), "order preserved: {s:?}");
            if opt.generate(&mut r).is_none() {
                nones += 1;
            }
        }
        assert!(nones > 10 && nones < 120, "none count {nones}");
    }
}
