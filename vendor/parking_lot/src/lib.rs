//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no `Result`, poisoning ignored). Only the API surface this
//! workspace uses is provided: `new`, `lock`, `into_inner`, plus `Debug`
//! and `Default` so containing types can derive them.

use std::sync::Mutex as StdMutex;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never returns an error:
    /// a poisoned lock (a holder panicked) is recovered, matching
    /// parking_lot's no-poisoning behavior.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn default_and_debug() {
        let m: Mutex<Vec<u8>> = Mutex::default();
        assert!(format!("{m:?}").contains("Mutex"));
    }
}
