//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the
//! no-op derive macros of the same names (mirroring real serde's
//! trait+macro dual export). Nothing in this workspace performs actual
//! serialization — the derives exist so stats/config types stay annotated
//! for a future swap to the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
