//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the API shape the
//! workspace's benches use (`bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//! Measurement is simple and honest rather than statistical: after a short
//! calibration, each benchmark runs for a fixed time budget and reports
//! mean/min iteration time to stdout. No HTML reports, no saved baselines.
//!
//! Set `CRITERION_STUB_BUDGET_MS` to change the per-benchmark measurement
//! budget (default 300 ms; calibration adds a few iterations on top).

use std::fmt::Display;
use std::time::{Duration, Instant};

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_STUB_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64);
    Duration::from_millis(ms)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A two-part id: `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration over the measured batch.
    mean_ns: f64,
    /// Fastest single iteration observed, nanoseconds.
    min_ns: f64,
    /// Iterations measured.
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly under the time budget and record statistics.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: one untimed warm-up, then time a single iteration to
        // size batches.
        std::hint::black_box(f());
        let once = {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed()
        };
        let budget = budget();
        let per_iter = once.max(Duration::from_nanos(20));
        let batch = (budget.as_nanos() / 20 / per_iter.as_nanos()).clamp(1, 10_000) as u64;
        let deadline = Instant::now() + budget;
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u64;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let elapsed = t.elapsed();
            total += elapsed;
            min = min.min(elapsed / batch as u32);
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.min_ns = min.as_nanos() as f64;
        self.iters = iters;
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { mean_ns: 0.0, min_ns: 0.0, iters: 0 };
    f(&mut b);
    println!(
        "{label:<50} mean {:>12}  min {:>12}  ({} iters)",
        human_ns(b.mean_ns),
        human_ns(b.min_ns),
        b.iters
    );
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }

    /// Accepted for source compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the stub sizes batches by time
    /// budget, not sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label), &mut f);
        self
    }

    /// Run one benchmark that borrows a shared input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; present for source compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
