//! Offline stand-in for the `bytes` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! workspace vendors the tiny `Buf`/`BufMut` subset it actually uses:
//! cursor-style reads over `&[u8]` and little-endian appends to `Vec<u8>`.
//! Semantics match the real crate for these methods (including panics on
//! short reads — callers in `mrsim` bounds-check first).

/// Read-side cursor abstraction (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// Read one byte, advancing the cursor.
    fn get_u8(&mut self) -> u8;
    /// Read a little-endian `u32`, advancing the cursor.
    fn get_u32_le(&mut self) -> u32;
    /// Read a little-endian `u64`, advancing the cursor.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, tail) = self.split_at(1);
        *self = tail;
        head[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, tail) = self.split_at(4);
        *self = tail;
        u32::from_le_bytes(head.try_into().expect("4-byte slice"))
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, tail) = self.split_at(8);
        *self = tail;
        u64::from_le_bytes(head.try_into().expect("8-byte slice"))
    }
}

/// Write-side abstraction (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xy");
        let mut r: &[u8] = &buf;
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r, b"xy");
    }
}
