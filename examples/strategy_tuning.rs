//! Choosing a β-unnesting strategy — the paper's Section 4/Figure 11
//! guidance as an interactive experiment.
//!
//! Sweeps the φ partition range of `TG_OptUnbJoin` on two query shapes:
//! an *unbound-object* join (B1-shaped, benefits from partial unnesting)
//! and a *partially-bound-object* join (B2-shaped, where full unnesting is
//! already cheap). Prints shuffle bytes and simulated seconds of the join
//! cycle so the Auto policy's decision rule is visible in the data.
//!
//! ```sh
//! cargo run --release --example strategy_tuning
//! ```

use ntga::prelude::*;

fn join_cycle_profile(
    store: &TripleStore,
    cluster: &ClusterConfig,
    query: &rdf_query::Query,
    strategy: Strategy,
    label: &str,
) -> (u64, f64) {
    let engine = cluster.engine_with(store);
    let run = ntga_core::execute(strategy, &engine, query, TRIPLES_FILE, label, false)
        .expect("plannable");
    let last = run.stats.jobs.last().expect("join cycle");
    (last.shuffle_bytes(), last.sim_seconds)
}

fn main() {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: 150,
        features: 120,
        max_features_per_product: 48,
        multi_feature_fraction: 0.97,
        ..Default::default()
    });
    let cluster =
        ClusterConfig { cost: CostModel::scaled_to(store.text_bytes()), ..Default::default() };
    println!("dataset: {} triples; sweeping φ on the unbound join cycle\n", store.len());

    let unbound_object = ntga::testbed::b_series().remove(1).query; // B1
    let partially_bound = ntga::testbed::b_series().remove(2).query; // B2

    for (name, query) in
        [("B1 (unbound object)", &unbound_object), ("B2 (partially bound)", &partially_bound)]
    {
        println!("{name}:");
        let (full_shuffle, full_s) =
            join_cycle_profile(&store, &cluster, query, Strategy::LazyFull, "full");
        println!(
            "  {:<18} shuffle {:>10} B   join cycle {:>7.1}s   (baseline)",
            "full unnest", full_shuffle, full_s
        );
        for m in [4u64, 16, 64, 256, 1024] {
            let (shuffle, secs) = join_cycle_profile(
                &store,
                &cluster,
                query,
                Strategy::LazyPartial(m),
                &format!("phi{m}"),
            );
            println!(
                "  {:<18} shuffle {:>10} B   join cycle {:>7.1}s   ({:+.0}% shuffle)",
                format!("partial φ_{m}"),
                shuffle,
                secs,
                (shuffle as f64 / full_shuffle as f64 - 1.0) * 100.0,
            );
        }
        println!();
    }

    println!(
        "Observation (matches the paper's Figure 11): partial unnesting only pays\n\
         off when the unbound pattern has many candidates per subject — the\n\
         unbound-object case. With a partially-bound object the candidate lists\n\
         are already short and φ makes little difference, so the Auto strategy\n\
         picks full unnesting there and partial unnesting otherwise."
    );

    // Show the Auto policy choosing per query.
    for (name, query) in [("B1", &unbound_object), ("B2", &partially_bound)] {
        let (shuffle, _) =
            join_cycle_profile(&store, &cluster, query, Strategy::Auto(1024), "auto");
        println!("Auto(1024) on {name}: join-cycle shuffle {shuffle} B");
    }
}
