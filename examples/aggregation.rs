//! Aggregation on the nested representation — the paper's stated future
//! work ("unbound-property queries with aggregation constraints"),
//! implemented without β-unnesting.
//!
//! "How many facts are recorded per gene?" is a COUNT over an
//! unbound-property query. A relational plan must materialize every
//! (gene, property, object) combination before counting; the TripleGroup
//! plan counts the *implicit* combinations of the nested triplegroups —
//! the multiplication the flat plan performs with disk I/O happens here in
//! arithmetic.
//!
//! ```sh
//! cargo run --release --example aggregation
//! ```

use ntga::prelude::*;
use ntga_core::aggregate;

fn main() {
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(80));
    println!("warehouse: {} triples\n", store.len());

    // A B4-shaped query: the unbound pattern is not part of the join, so
    // lazy unnesting carries it nested into the final output.
    let query = parse_query(
        "SELECT * WHERE {
            ?gene <rdfs:label> ?l .
            ?gene <bio:xGO> ?go .
            ?gene ?p ?fact .
            ?go <go:label> ?gl .
         }",
    )
    .unwrap();

    let engine = ClusterConfig::default().engine_with(&store);
    ntga_core::execute(Strategy::LazyFull, &engine, &query, TRIPLES_FILE, "agg", false)
        .expect("plannable query");

    // The final output file is the last tgjoin the planner wrote.
    let final_file = engine
        .hdfs()
        .lock()
        .file_names()
        .into_iter()
        .filter(|n| n.contains("agg.tgjoin"))
        .max()
        .expect("final join output");
    let tuples: Vec<ntga_core::TgTuple> = engine.read_records(&final_file).unwrap();

    // COUNT(*) without unnesting: arithmetic over nested list lengths.
    let total = aggregate::solution_count_fast(&tuples);
    println!(
        "COUNT(*) = {total} solutions, computed from {} nested tuples ({} B)",
        tuples.len(),
        tuples.iter().map(mrsim::Rec::text_size).sum::<u64>()
    );

    // GROUP BY gene: top genes by fact count.
    let groups = aggregate::group_count_by_subject(&tuples, 0);
    let mut ranked: Vec<_> = groups.into_iter().collect();
    ranked.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\ntop genes by (go-term × fact) combinations:");
    for (gene, count) in ranked.iter().take(5) {
        println!("  {gene:<12} {count}");
    }

    // The same aggregation as a MapReduce job with a combiner: the
    // shuffle moves one (gene, count) pair per map task per gene.
    let job = aggregate::count_job("count", &final_file, 0, "counts");
    let stats = engine.run_job(&job).unwrap();
    let rows: Vec<(String, u64)> = engine.read_records("counts").unwrap();
    let mr_total: u64 = rows.iter().map(|(_, c)| c).sum();
    assert_eq!(mr_total, total);
    println!(
        "\nMR count job: {} shuffle records for {} solutions (combiner collapsed {})",
        stats.map_output_records,
        total,
        stats.pre_combine_records - stats.map_output_records
    );

    // Contrast: what a flat plan would have had to materialize first.
    let naive = rdf_query::naive::evaluate(&query, &store);
    assert_eq!(naive.len() as u64, total, "fast count equals the real solution count");
    println!("verified against the naive evaluator: {} solutions ✓", naive.len());
}
