//! Quickstart: parse N-Triples, write an unbound-property query, run it
//! with the NTGA plan, and inspect both solutions and MapReduce cost
//! counters.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ntga::prelude::*;

fn main() {
    // 1. A tiny RDF dataset — the paper's running example: gene9 carries a
    //    label, two GO cross-references and a synonym; GO terms carry
    //    labels.
    let data = r#"
        <gene9>  <bio:label>   "retinoid receptor" .
        <gene9>  <bio:xGO>     <go1> .
        <gene9>  <bio:xGO>     <go9> .
        <gene9>  <bio:synonym> "RCoR-1" .
        <homod2> <bio:label>   "homeobox 2" .
        <go1>    <go:label>    "nucleus" .
        <go9>    <go:label>    "membrane" .
    "#;
    let store = TripleStore::from_ntriples(data).expect("valid N-Triples");
    println!("loaded {} triples", store.len());

    // 2. An unbound-property query: "genes with a label, related *somehow*
    //    (?p is a don't-care edge) to something that has a GO label".
    let query = parse_query(
        "SELECT * WHERE {
            ?gene <bio:label> ?name .
            ?gene ?p ?go .
            ?go <go:label> ?goname .
         }",
    )
    .expect("valid query");
    println!(
        "query: {} stars, {} unbound-property pattern(s)",
        query.stars.len(),
        query.unbound_pattern_count()
    );

    // 3. Run it on a simulated MapReduce cluster with the paper's
    //    recommended strategy (lazy β-unnesting, partial for unbound
    //    objects).
    let engine = ClusterConfig::default().engine_with(&store);
    let run = run_query(Approach::NtgaAuto(1024), &engine, &query, "quickstart", true)
        .expect("plannable query");

    println!("\nsolutions:");
    for binding in run.solutions.as_ref().expect("extracted").iter() {
        println!("  {binding}");
    }

    // 4. The cost counters the paper's evaluation is built on.
    let stats = &run.stats;
    println!("\nexecution profile ({}):", stats.label);
    println!("  MR cycles:        {}", stats.mr_cycles);
    println!("  full input scans: {}", stats.full_scans);
    println!("  HDFS read:        {} B", stats.total_read_bytes());
    println!("  HDFS written:     {} B", stats.total_write_bytes());
    println!("  shuffled:         {} B", stats.total_shuffle_bytes());

    // 5. Sanity: the MapReduce result equals the naive in-memory
    //    evaluation.
    let gold = rdf_query::naive::evaluate(&query, &store);
    assert_eq!(run.solutions.unwrap(), gold);
    println!("\nresult verified against the naive evaluator ✓");
}
