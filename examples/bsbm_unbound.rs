//! The disk-exhaustion experiment, end to end: run the paper's B-series
//! queries on a disk-constrained simulated cluster (the paper's 60 nodes ×
//! 20 GB at replication 2) and watch the relational plans die of
//! redundancy while lazy β-unnesting survives — Figure 9(a) as a program.
//!
//! ```sh
//! cargo run --release --example bsbm_unbound
//! ```

use ntga::prelude::*;

fn main() {
    let store = datagen::bsbm::generate(&datagen::BsbmConfig {
        products: 120,
        features: 40,
        max_features_per_product: 16,
        ..Default::default()
    });
    println!("dataset: BSBM-like, {} triples ({} B as N-Triples)", store.len(), store.text_bytes());

    // A cluster with 6.5× the replicated input in total disk — tight, the
    // way the paper's VCL nodes were.
    let cluster = ClusterConfig { replication: 2, ..Default::default() }.tight_disk(&store, 6.5);
    println!(
        "cluster: {} nodes × {} B disk, replication {}\n",
        cluster.nodes, cluster.disk_per_node, cluster.replication
    );

    println!(
        "{:<6} {:<22} {:>10} {:>14} {:>14}  outcome",
        "query", "approach", "cycles", "written", "peak disk"
    );
    for tq in ntga::testbed::b_series() {
        if !["B0", "B1", "B2", "B3", "B4"].contains(&tq.id.as_str()) {
            continue;
        }
        for approach in
            [Approach::Pig, Approach::Hive, Approach::NtgaEager, Approach::NtgaAuto(1024)]
        {
            let engine = cluster.engine_with(&store);
            let run = run_query(approach, &engine, &tq.query, &tq.id, false).unwrap();
            println!(
                "{:<6} {:<22} {:>10} {:>14} {:>14}  {}",
                tq.id,
                approach.label(),
                run.stats.mr_cycles,
                run.stats.total_write_bytes(),
                run.stats.peak_disk_bytes,
                if run.succeeded() {
                    "completed".to_string()
                } else {
                    format!("FAILED — {}", run.stats.failure.as_deref().unwrap_or("?"))
                }
            );
        }
        println!();
    }

    println!(
        "The failures are the paper's 'X' bars: flat n-tuples repeat every bound\n\
         match per unbound match, and the intermediate results outgrow the DFS.\n\
         Lazy β-unnesting keeps them nested until the join that needs them."
    );
}
