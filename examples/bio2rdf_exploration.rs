//! Exploring an unfamiliar warehouse with unbound-property queries — the
//! paper's motivating scenario (Section 1): a Bio2RDF-style integrated
//! life-sciences dataset whose relationship vocabulary the user does not
//! know.
//!
//! The example asks three progressively-structured questions:
//!   1. "What is known about hexokinase genes?"          (A6-shaped)
//!   2. "How are genes connected to things with labels?" (A3-shaped)
//!   3. "Which relationships exist at all?"              (schema discovery)
//!
//! and compares every execution approach on the same cluster.
//!
//! ```sh
//! cargo run --release --example bio2rdf_exploration
//! ```

use ntga::prelude::*;

fn main() {
    let store = datagen::bio2rdf::generate(&datagen::Bio2RdfConfig::with_genes(120));
    let stats = store.stats();
    println!(
        "warehouse: {} triples, {} properties ({:.0}% multi-valued), max xRef multiplicity {}",
        stats.triples,
        stats.distinct_properties,
        stats.multi_valued_fraction * 100.0,
        stats.per_property[&rdf_model::atom::atom(datagen::vocab::bio2rdf::X_REF)].max_multiplicity
    );

    // --- 1. everything about hexokinase -----------------------------------
    let q1 = parse_query(
        r#"SELECT * WHERE {
            ?gene <bio:geneSymbol> ?sym .
            ?gene ?p ?x .
            FILTER contains(?x, "hexokinase") .
        }"#,
    )
    .unwrap();
    let engine = ClusterConfig::default().engine_with(&store);
    let run = run_query(Approach::NtgaAuto(1024), &engine, &q1, "hexo", true).unwrap();
    let solutions = run.solutions.unwrap();
    println!("\n[1] 'what mentions hexokinase?': {} solutions via ?p edges:", solutions.len());
    let mut props: Vec<String> =
        solutions.iter().filter_map(|b| b.get("p").map(|p| p.to_string())).collect();
    props.sort();
    props.dedup();
    println!("    discovered relationships: {}", props.join(", "));

    // --- 2. unknown gene→reference connections, comparing approaches ------
    let q2 = parse_query(
        "SELECT * WHERE {
            ?gene <rdfs:label> ?l .
            ?gene ?p ?r .
            ?r <ref:database> ?db .
         }",
    )
    .unwrap();
    println!("\n[2] 'genes connected somehow to reference records' — approach comparison:");
    println!(
        "    {:<22} {:>6} {:>12} {:>12} {:>12}",
        "approach", "cycles", "read", "written", "shuffled"
    );
    for approach in [
        Approach::Pig,
        Approach::Hive,
        Approach::NtgaEager,
        Approach::NtgaLazyFull,
        Approach::NtgaAuto(1024),
    ] {
        let engine = ClusterConfig::default().engine_with(&store);
        let run = run_query(approach, &engine, &q2, "conn", false).unwrap();
        println!(
            "    {:<22} {:>6} {:>12} {:>12} {:>12}",
            approach.label(),
            run.stats.mr_cycles,
            run.stats.total_read_bytes(),
            run.stats.total_write_bytes(),
            run.stats.total_shuffle_bytes(),
        );
    }

    // --- 3. schema discovery: which properties exist, how multi-valued ----
    println!("\n[3] property inventory (top by multiplicity):");
    let mut props: Vec<_> = stats.per_property.iter().collect();
    props.sort_by_key(|(_, s)| std::cmp::Reverse(s.max_multiplicity));
    for (prop, pstats) in props.iter().take(5) {
        println!(
            "    {:<18} count={:<6} subjects={:<6} max-multiplicity={}",
            prop, pstats.count, pstats.distinct_subjects, pstats.max_multiplicity
        );
    }
    println!(
        "\nhigh-multiplicity properties like {} are exactly what makes relational\n\
         evaluation of the unbound queries above explode — see `cargo run -p ntga-bench --bin fig13`.",
        datagen::vocab::bio2rdf::X_REF
    );
}
